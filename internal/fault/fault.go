// Package fault is the chaos-injection harness: a deterministic, seeded
// schedule of drops, delays, error returns and whole-node crashes that the
// emulated cluster consults at its I/O points (sub-table fetches, disk and
// scratch operations, transport calls, join steps). Because rules fire on
// per-rule operation counts rather than wall-clock time, a chaos test's
// fault pattern is reproducible run to run, and the recovery machinery —
// retries, replica failover, circuit breakers, engine-level rebuilds — can
// be asserted against exact outcomes.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"sciview/internal/simio"
	"sciview/internal/transport"
)

// Node names follow the cluster's convention: "storage-<i>" for storage
// nodes, "compute-<j>" for compute nodes.

// StorageNode and ComputeNode render cluster node ids in the injector's
// naming scheme.
func StorageNode(i int) string { return fmt.Sprintf("storage-%d", i) }

// ComputeNode renders a compute node id.
func ComputeNode(j int) string { return fmt.Sprintf("compute-%d", j) }

// Operation names the injector recognizes. "*" in a rule matches any.
const (
	OpFetch = "fetch" // one BDS sub-table request (per attempt)
	OpRead  = "read"  // disk or scratch read
	OpWrite = "write" // disk or scratch write
	OpEdge  = "edge"  // one IJ scheduled edge
	OpCall  = "call"  // one transport exchange
)

// Action is what a rule does when it fires.
type Action int

const (
	// Crash takes the node down permanently once the rule's operation
	// count reaches After. Every subsequent operation on the node fails
	// with a *NodeDownError.
	Crash Action = iota
	// Drop fails every Every-th matching operation with a retryable
	// (ErrUnavailable-wrapped) error.
	Drop
	// Delay stalls every Every-th matching operation by Delay.
	Delay
	// Restart takes the node down at the rule's After-th matching
	// operation — exactly like Crash — and then brings it back up after
	// DownFor further operations have been recorded by the injector
	// (anywhere in the cluster, any node, any op). The revival is what a
	// chaos schedule uses to exercise rejoin: the node's store is intact
	// but it missed every append committed while it was dark, and the
	// repair tier has to catch it up before routing trusts it again.
	Restart
	// ShortWrite fails every Every-th matching write with a
	// *simio.PartialWriteError: the device really persists half the
	// payload before erroring, so the spill layer's truncation detection
	// is exercised against genuinely torn files. Only OpWrite operations
	// honor the partial-persist semantics; on other ops it is a plain
	// error.
	ShortWrite
)

func (a Action) String() string {
	switch a {
	case Crash:
		return "crash"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Restart:
		return "restart"
	case ShortWrite:
		return "shortwrite"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Rule is one entry of the fault schedule.
type Rule struct {
	Node   string // "storage-0", "compute-1", or "*"
	Op     string // OpFetch, OpRead, ... or "*"
	Action Action
	// After fires a Crash or Restart when the rule's matched-operation
	// count reaches this value (1-based).
	After int64
	// Every fires a Drop or Delay on every Every-th matched operation.
	Every int64
	// Delay is the injected stall of a Delay rule.
	Delay time.Duration
	// DownFor is a Restart rule's downtime, measured in operations the
	// injector records cluster-wide after the crash (keeping revival as
	// deterministic as the crash itself). 0 defaults to After.
	DownFor int64
}

// String renders the rule in the -faults clause syntax accepted by Parse.
func (r Rule) String() string {
	switch r.Action {
	case Crash:
		return fmt.Sprintf("crash:%s:%s:%d", r.Node, r.Op, r.After)
	case Drop:
		return fmt.Sprintf("drop:%s:%s:%d", r.Node, r.Op, r.Every)
	case Delay:
		return fmt.Sprintf("delay:%s:%s:%d:%s", r.Node, r.Op, r.Every, r.Delay)
	case Restart:
		down := r.DownFor
		if down == 0 {
			down = r.After
		}
		return fmt.Sprintf("restart:%s:%s:%d:%d", r.Node, r.Op, r.After, down)
	case ShortWrite:
		return fmt.Sprintf("shortwrite:%s:%s:%d", r.Node, r.Op, r.Every)
	default:
		return fmt.Sprintf("?:%s:%s", r.Node, r.Op)
	}
}

func (r Rule) matches(node, op string) bool {
	return (r.Node == "*" || r.Node == node) && (r.Op == "*" || r.Op == op)
}

// NodeDownError reports an operation on a crashed node.
type NodeDownError struct {
	Node string
}

func (e *NodeDownError) Error() string { return fmt.Sprintf("fault: node %s is down", e.Node) }

// Unwrap classifies a dead node as unavailable, so the retry/failover
// layer treats it as a retryable I/O fault (and fails over to replicas).
func (e *NodeDownError) Unwrap() error { return transport.ErrUnavailable }

// IsNodeDown reports whether err is (or wraps) a NodeDownError, returning
// the node name.
func IsNodeDown(err error) (string, bool) {
	var nd *NodeDownError
	if errors.As(err, &nd) {
		return nd.Node, true
	}
	return "", false
}

// Stats counts injected faults.
type Stats struct {
	Drops   int64
	Delays  int64
	Crashes int64
	// Restarts counts nodes brought back up by Restart rules.
	Restarts int64
	// ShortWrites counts injected partial writes.
	ShortWrites int64
}

// Injector applies a fault schedule. All methods are safe for concurrent
// use. The zero value (and a nil *Injector) is a no-op injector that
// never fails anything.
type Injector struct {
	mu     sync.Mutex
	rules  []Rule
	counts []int64 // per-rule matched-operation counters
	down   map[string]bool
	// pending maps a down-for-restart node to the number of cluster-wide
	// operations remaining until it revives.
	pending map[string]int64
	stats   Stats

	// onRestart (set via SetOnRestart) is invoked — outside the injector's
	// lock — for every node a Restart rule brings back up, so the repair
	// tier can begin catch-up without polling.
	notifyMu  sync.Mutex
	onRestart func(node string)
}

// SetOnRestart registers a callback invoked for every node revived by a
// Restart rule. The callback runs outside the injector's lock (it may call
// back into the injector) but must not block for long: it is called from
// the I/O path that triggered the revival.
func (in *Injector) SetOnRestart(fn func(node string)) {
	if in == nil {
		return
	}
	in.notifyMu.Lock()
	in.onRestart = fn
	in.notifyMu.Unlock()
}

// New returns an injector applying the given schedule.
func New(rules ...Rule) *Injector {
	return &Injector{
		rules:   rules,
		counts:  make([]int64, len(rules)),
		down:    make(map[string]bool),
		pending: make(map[string]int64),
	}
}

// Spec renders the schedule in the comma-separated clause syntax accepted
// by Parse, so a schedule round-trips: Parse(in.Spec()) rebuilds an
// equivalent injector. A no-op injector renders "".
func (in *Injector) Spec() string {
	if in == nil {
		return ""
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	parts := make([]string, len(in.rules))
	for i, r := range in.rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// Parse builds an injector from a comma-separated schedule spec (the
// -faults flag syntax). Clauses:
//
//	crash:<node>:<op>:<n>          node crashes at its n-th matching op
//	drop:<node>:<op>:<n>           every n-th matching op fails (retryable)
//	delay:<node>:<op>:<n>:<dur>    every n-th matching op stalls dur
//	restart:<node>:<op>:<n>[:<m>]  node crashes at its n-th matching op and
//	                               revives after m further cluster-wide
//	                               operations (default m = n)
//	shortwrite:<node>:<op>:<n>     every n-th matching write persists half
//	                               its payload, then fails
//
// <node> is storage-<i>, compute-<j> or *; <op> is fetch, read, write,
// edge, call or *. An empty spec yields a no-op injector.
func Parse(spec string) (*Injector, error) {
	var rules []Rule
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		f := strings.Split(clause, ":")
		if len(f) < 4 {
			return nil, fmt.Errorf("fault: clause %q: want kind:node:op:n", clause)
		}
		n, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("fault: clause %q: bad count %q", clause, f[3])
		}
		r := Rule{Node: f[1], Op: f[2]}
		switch f[0] {
		case "crash":
			if len(f) != 4 {
				return nil, fmt.Errorf("fault: clause %q: crash takes 4 fields", clause)
			}
			r.Action, r.After = Crash, n
		case "drop":
			if len(f) != 4 {
				return nil, fmt.Errorf("fault: clause %q: drop takes 4 fields", clause)
			}
			r.Action, r.Every = Drop, n
		case "delay":
			if len(f) != 5 {
				return nil, fmt.Errorf("fault: clause %q: delay takes 5 fields", clause)
			}
			d, err := time.ParseDuration(f[4])
			if err != nil {
				return nil, fmt.Errorf("fault: clause %q: %v", clause, err)
			}
			r.Action, r.Every, r.Delay = Delay, n, d
		case "restart":
			if len(f) != 4 && len(f) != 5 {
				return nil, fmt.Errorf("fault: clause %q: restart takes 4 or 5 fields", clause)
			}
			r.Action, r.After, r.DownFor = Restart, n, n
			if len(f) == 5 {
				m, err := strconv.ParseInt(f[4], 10, 64)
				if err != nil || m < 1 {
					return nil, fmt.Errorf("fault: clause %q: bad downtime %q", clause, f[4])
				}
				r.DownFor = m
			}
		case "shortwrite":
			if len(f) != 4 {
				return nil, fmt.Errorf("fault: clause %q: shortwrite takes 4 fields", clause)
			}
			r.Action, r.Every = ShortWrite, n
		default:
			return nil, fmt.Errorf("fault: clause %q: unknown kind %q", clause, f[0])
		}
		rules = append(rules, r)
	}
	return New(rules...), nil
}

// Op records one operation on a node and applies the schedule: it returns
// a *NodeDownError if the node is (or just became) down, an injected drop
// error, or nil after any injected delay has elapsed. A nil injector
// returns nil.
func (in *Injector) Op(node, op string) error {
	delay, revived, err := in.apply(node, op)
	in.notifyRestarts(revived)
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// notifyRestarts delivers revival notifications outside the lock.
func (in *Injector) notifyRestarts(revived []string) {
	if len(revived) == 0 {
		return
	}
	in.notifyMu.Lock()
	fn := in.onRestart
	in.notifyMu.Unlock()
	if fn == nil {
		return
	}
	for _, n := range revived {
		fn(n)
	}
}

// apply is Op without the sleep or notification: it returns the delay for
// the caller to serve (the transport hook wants the delay before the
// exchange) and the nodes this operation's restart clocks revived.
func (in *Injector) apply(node, op string) (time.Duration, []string, error) {
	if in == nil {
		return 0, nil, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	// Every recorded operation — on any node — advances the restart
	// clocks, so revival is as deterministic as the crash that armed it.
	var revived []string
	for n, left := range in.pending {
		left--
		if left <= 0 {
			delete(in.pending, n)
			delete(in.down, n)
			in.stats.Restarts++
			revived = append(revived, n)
		} else {
			in.pending[n] = left
		}
	}
	if in.down[node] {
		return 0, revived, &NodeDownError{Node: node}
	}
	var delay time.Duration
	for i := range in.rules {
		r := &in.rules[i]
		if !r.matches(node, op) {
			continue
		}
		in.counts[i]++
		switch r.Action {
		case Crash:
			if in.counts[i] >= r.After {
				in.down[node] = true
				in.stats.Crashes++
				return delay, revived, &NodeDownError{Node: node}
			}
		case Restart:
			// Exact equality: a restart fires once. Counts keep advancing
			// after the revival, so the node does not immediately re-crash.
			if in.counts[i] == r.After {
				down := r.DownFor
				if down == 0 {
					down = r.After
				}
				in.down[node] = true
				in.pending[node] = down
				in.stats.Crashes++
				return delay, revived, &NodeDownError{Node: node}
			}
		case Drop:
			if r.Every > 0 && in.counts[i]%r.Every == 0 {
				in.stats.Drops++
				return delay, revived, fmt.Errorf("fault: injected drop (%s/%s op %d): %w",
					node, op, in.counts[i], transport.ErrUnavailable)
			}
		case Delay:
			if r.Every > 0 && in.counts[i]%r.Every == 0 {
				in.stats.Delays++
				delay += r.Delay
			}
		case ShortWrite:
			if r.Every > 0 && in.counts[i]%r.Every == 0 {
				in.stats.ShortWrites++
				return delay, revived, fmt.Errorf("fault: injected short write (%s/%s op %d): %w",
					node, op, in.counts[i], &simio.PartialWriteError{Rule: r.String()})
			}
		}
	}
	return delay, revived, nil
}

// Down reports whether a node has crashed. A nil injector reports false.
func (in *Injector) Down(node string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.down[node]
}

// Kill crashes a node immediately (an explicit chaos action, outside any
// counted rule).
func (in *Injector) Kill(node string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.down[node] {
		in.down[node] = true
		in.stats.Crashes++
	}
}

// Revive brings a crashed node back (for breaker half-open probe tests).
// Its stored state is NOT restored — the cluster decides what a revived
// node still holds.
func (in *Injector) Revive(node string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.down, node)
}

// Downed returns the crashed nodes, unordered. Nil injector → nil.
func (in *Injector) Downed() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []string
	for n := range in.down {
		out = append(out, n)
	}
	return out
}

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Fault implements transport.FaultHook: transport calls count as OpCall
// against the node owning the dialed service (bds-<i> → storage-<i>).
// Unrecognized service names are passed through unfaulted.
func (in *Injector) Fault(service, method string) (time.Duration, error) {
	node := nodeOfService(service)
	if node == "" || in == nil {
		return 0, nil
	}
	delay, revived, err := in.apply(node, OpCall)
	in.notifyRestarts(revived)
	return delay, err
}

// nodeOfService maps transport service names to injector node names.
func nodeOfService(service string) string {
	if rest, ok := strings.CutPrefix(service, "bds-"); ok {
		return "storage-" + rest
	}
	return ""
}

// verify interface compliance.
var _ transport.FaultHook = (*Injector)(nil)
