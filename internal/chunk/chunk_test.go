package chunk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sciview/internal/tuple"
)

func testSchema() tuple.Schema {
	return tuple.NewSchema(
		tuple.Attr{Name: "x", Kind: tuple.Coord},
		tuple.Attr{Name: "y", Kind: tuple.Coord},
		tuple.Attr{Name: "oilp", Kind: tuple.Measure},
	)
}

func testTable(rows int, seed int64) *tuple.SubTable {
	r := rand.New(rand.NewSource(seed))
	st := tuple.NewSubTable(tuple.ID{Table: 3, Chunk: 9}, testSchema(), rows)
	for i := 0; i < rows; i++ {
		st.AppendRow(float32(r.Intn(100)), float32(r.Intn(100)), r.Float32())
	}
	return st
}

func descFor(st *tuple.SubTable, format string) *Desc {
	return &Desc{
		Table:  st.ID.Table,
		Chunk:  st.ID.Chunk,
		Format: format,
		Attrs:  st.Schema.Attrs,
		Rows:   st.NumRows(),
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"rowmajor", "colmajor", "csv", "rle"} {
		e, err := Lookup(name)
		if err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
			continue
		}
		if e.Name() != name {
			t.Errorf("extractor name %q != %q", e.Name(), name)
		}
	}
	if _, err := Lookup("hdf5"); err == nil {
		t.Error("expected error for unregistered format")
	}
	fs := Formats()
	if len(fs) < 4 {
		t.Errorf("Formats() = %v", fs)
	}
}

func TestRoundTripAllFormats(t *testing.T) {
	st := testTable(57, 42)
	for _, format := range []string{"rowmajor", "colmajor", "csv", "rle"} {
		t.Run(format, func(t *testing.T) {
			e, err := Lookup(format)
			if err != nil {
				t.Fatal(err)
			}
			data, err := e.Encode(st)
			if err != nil {
				t.Fatal(err)
			}
			d := descFor(st, format)
			d.Size = int64(len(data))
			got, err := Extract(d, data)
			if err != nil {
				t.Fatal(err)
			}
			if got.ID != st.ID {
				t.Errorf("ID = %v, want %v", got.ID, st.ID)
			}
			if got.NumRows() != st.NumRows() {
				t.Fatalf("rows = %d, want %d", got.NumRows(), st.NumRows())
			}
			for r := 0; r < st.NumRows(); r++ {
				for c := 0; c < st.Schema.NumAttrs(); c++ {
					if got.Value(r, c) != st.Value(r, c) {
						t.Fatalf("(%d,%d) = %v, want %v", r, c, got.Value(r, c), st.Value(r, c))
					}
				}
			}
		})
	}
}

func TestBinaryFormatSizes(t *testing.T) {
	st := testTable(10, 1)
	for _, format := range []string{"rowmajor", "colmajor"} {
		e, _ := Lookup(format)
		data, err := e.Encode(st)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != st.Bytes() {
			t.Errorf("%s: %d bytes, want %d (raw layouts carry no framing)", format, len(data), st.Bytes())
		}
	}
}

func TestExtractErrors(t *testing.T) {
	st := testTable(4, 2)
	d := descFor(st, "rowmajor")
	if _, err := Extract(d, make([]byte, 13)); err == nil {
		t.Error("rowmajor should reject non-multiple-of-record-size data")
	}
	d.Format = "colmajor"
	if _, err := Extract(d, make([]byte, 13)); err == nil {
		t.Error("colmajor should reject non-multiple-of-record-size data")
	}
	d.Format = "unknown"
	if _, err := Extract(d, nil); err == nil {
		t.Error("unknown format should fail")
	}
	empty := &Desc{Format: "rowmajor"}
	if _, err := Extract(empty, nil); err == nil {
		t.Error("zero-attribute chunk should fail")
	}
}

func TestCSVErrors(t *testing.T) {
	d := descFor(testTable(1, 3), "csv")
	if _, err := Extract(d, []byte("1,2\n")); err == nil {
		t.Error("wrong field count should fail")
	}
	if _, err := Extract(d, []byte("1,2,zzz\n")); err == nil {
		t.Error("non-numeric field should fail")
	}
	// Blank lines and missing trailing newline are tolerated.
	got, err := Extract(d, []byte("1,2,3\n\n4,5,6"))
	if err != nil || got.NumRows() != 2 {
		t.Errorf("lenient parse failed: %v rows=%d", err, got.NumRows())
	}
}

func TestDescAccessors(t *testing.T) {
	st := testTable(1, 4)
	d := descFor(st, "csv")
	if d.ID() != (tuple.ID{Table: 3, Chunk: 9}) {
		t.Errorf("ID = %v", d.ID())
	}
	if !d.Schema().Equal(st.Schema) {
		t.Errorf("Schema = %v", d.Schema())
	}
}

func TestPropFormatsAgree(t *testing.T) {
	// All three layouts of the same sub-table must extract to identical
	// contents.
	f := func(seed int64) bool {
		rows := int(seed%64) + 1
		if rows < 0 {
			rows = -rows + 1
		}
		st := testTable(rows, seed)
		var decoded []*tuple.SubTable
		for _, format := range []string{"rowmajor", "colmajor", "csv", "rle"} {
			e, _ := Lookup(format)
			data, err := e.Encode(st)
			if err != nil {
				return false
			}
			got, err := Extract(descFor(st, format), data)
			if err != nil {
				return false
			}
			decoded = append(decoded, got)
		}
		for _, got := range decoded[1:] {
			if got.NumRows() != decoded[0].NumRows() {
				return false
			}
			for r := 0; r < got.NumRows(); r++ {
				for c := 0; c < got.Schema.NumAttrs(); c++ {
					if got.Value(r, c) != decoded[0].Value(r, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRLECompressesGridCoordinates(t *testing.T) {
	// A structured grid: z column is one long run, y repeats per row.
	schema := tuple.NewSchema(
		tuple.Attr{Name: "x", Kind: tuple.Coord},
		tuple.Attr{Name: "y", Kind: tuple.Coord},
		tuple.Attr{Name: "z", Kind: tuple.Coord},
	)
	st := tuple.NewSubTable(tuple.ID{}, schema, 0)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			st.AppendRow(float32(x), float32(y), 7)
		}
	}
	e, _ := Lookup("rle")
	data, err := e.Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= st.Bytes() {
		t.Errorf("rle did not compress: %d vs %d raw bytes", len(data), st.Bytes())
	}
	got, err := e.Extract(descFor(st, "rle"), data)
	if err != nil || got.NumRows() != st.NumRows() {
		t.Fatalf("round trip: %v rows=%d", err, got.NumRows())
	}
}

func TestRLEErrors(t *testing.T) {
	st := testTable(8, 9)
	e, _ := Lookup("rle")
	data, _ := e.Encode(st)
	d := descFor(st, "rle")
	for _, cut := range []int{0, 3, len(data) / 2, len(data) - 1} {
		if _, err := e.Extract(d, data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := e.Extract(d, append(append([]byte{}, data...), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Zero-length run rejected.
	bad := []byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	one := &Desc{Format: "rle", Attrs: []tuple.Attr{{Name: "x", Kind: tuple.Coord}}}
	if _, err := e.Extract(one, bad); err == nil {
		t.Error("zero-length run accepted")
	}
	if _, err := e.Extract(&Desc{Format: "rle"}, nil); err == nil {
		t.Error("zero-attribute chunk accepted")
	}
}

func TestRLEDatasetEndToEnd(t *testing.T) {
	// The generator and BDS path work with the compressed format.
	// (Exercised via the oilres package elsewhere; here: direct encode of
	// a generated-like block with mixed runs.)
	st := testTable(64, 10)
	e, _ := Lookup("rle")
	data, err := e.Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Extract(descFor(st, "rle"), data)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < st.NumRows(); r++ {
		for c := 0; c < st.Schema.NumAttrs(); c++ {
			if got.Value(r, c) != st.Value(r, c) {
				t.Fatalf("(%d,%d) differs", r, c)
			}
		}
	}
}
