package chunk

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"sciview/internal/tuple"
)

func init() {
	Register(RowMajor{})
	Register(ColMajor{})
	Register(CSV{})
}

// RowMajor is the record-oriented binary layout: records stored
// consecutively, each record its attributes in schema order as little-endian
// float32. This matches simulation outputs that write one grid point at a
// time.
type RowMajor struct{}

// Name implements Extractor.
func (RowMajor) Name() string { return "rowmajor" }

// Extract implements Extractor.
func (RowMajor) Extract(d *Desc, data []byte) (*tuple.SubTable, error) {
	schema := d.Schema()
	na := schema.NumAttrs()
	if na == 0 {
		return nil, fmt.Errorf("chunk: rowmajor chunk %v has no attributes", d.ID())
	}
	rec := schema.RecordSize()
	if len(data)%rec != 0 {
		return nil, fmt.Errorf("chunk: rowmajor chunk %v: %d bytes not a multiple of record size %d", d.ID(), len(data), rec)
	}
	rows := len(data) / rec
	cols := make([][]float32, na)
	for c := range cols {
		cols[c] = make([]float32, rows)
	}
	off := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < na; c++ {
			cols[c][r] = math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
	}
	return tuple.FromColumns(d.ID(), schema, cols)
}

// Encode implements Extractor.
func (RowMajor) Encode(st *tuple.SubTable) ([]byte, error) {
	na := st.Schema.NumAttrs()
	out := make([]byte, 0, st.Bytes())
	var buf [4]byte
	for r := 0; r < st.NumRows(); r++ {
		for c := 0; c < na; c++ {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(st.Value(r, c)))
			out = append(out, buf[:]...)
		}
	}
	return out, nil
}

// ColMajor is the planar binary layout: each attribute's values stored
// contiguously (column after column), as written by simulations that dump
// one field array at a time.
type ColMajor struct{}

// Name implements Extractor.
func (ColMajor) Name() string { return "colmajor" }

// Extract implements Extractor.
func (ColMajor) Extract(d *Desc, data []byte) (*tuple.SubTable, error) {
	schema := d.Schema()
	na := schema.NumAttrs()
	if na == 0 {
		return nil, fmt.Errorf("chunk: colmajor chunk %v has no attributes", d.ID())
	}
	rec := schema.RecordSize()
	if len(data)%rec != 0 {
		return nil, fmt.Errorf("chunk: colmajor chunk %v: %d bytes not a multiple of record size %d", d.ID(), len(data), rec)
	}
	rows := len(data) / rec
	cols := make([][]float32, na)
	off := 0
	for c := 0; c < na; c++ {
		col := make([]float32, rows)
		for r := 0; r < rows; r++ {
			col[r] = math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
		cols[c] = col
	}
	return tuple.FromColumns(d.ID(), schema, cols)
}

// Encode implements Extractor.
func (ColMajor) Encode(st *tuple.SubTable) ([]byte, error) {
	out := make([]byte, 0, st.Bytes())
	var buf [4]byte
	for c := 0; c < st.Schema.NumAttrs(); c++ {
		for _, v := range st.Col(c) {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
			out = append(out, buf[:]...)
		}
	}
	return out, nil
}

// CSV is a text layout: one record per line, comma-separated decimal
// values in schema order. It represents sensor-style exports and exercises
// an extractor whose parsing cost is far from free.
type CSV struct{}

// Name implements Extractor.
func (CSV) Name() string { return "csv" }

// Extract implements Extractor.
func (CSV) Extract(d *Desc, data []byte) (*tuple.SubTable, error) {
	schema := d.Schema()
	na := schema.NumAttrs()
	st := tuple.NewSubTable(d.ID(), schema, d.Rows)
	vals := make([]float32, na)
	lineNo := 0
	for len(data) > 0 {
		nl := -1
		for i, b := range data {
			if b == '\n' {
				nl = i
				break
			}
		}
		var line string
		if nl < 0 {
			line, data = string(data), nil
		} else {
			line, data = string(data[:nl]), data[nl+1:]
		}
		lineNo++
		if strings.TrimSpace(line) == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != na {
			return nil, fmt.Errorf("chunk: csv chunk %v line %d: %d fields, want %d", d.ID(), lineNo, len(fields), na)
		}
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 32)
			if err != nil {
				return nil, fmt.Errorf("chunk: csv chunk %v line %d field %d: %w", d.ID(), lineNo, i, err)
			}
			vals[i] = float32(v)
		}
		st.AppendRow(vals...)
	}
	return st, nil
}

// Encode implements Extractor.
func (CSV) Encode(st *tuple.SubTable) ([]byte, error) {
	var sb strings.Builder
	na := st.Schema.NumAttrs()
	for r := 0; r < st.NumRows(); r++ {
		for c := 0; c < na; c++ {
			if c > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.FormatFloat(float64(st.Value(r, c)), 'g', -1, 32))
		}
		sb.WriteByte('\n')
	}
	return []byte(sb.String()), nil
}
