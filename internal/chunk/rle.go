package chunk

import (
	"encoding/binary"
	"fmt"
	"math"

	"sciview/internal/tuple"
)

func init() {
	Register(RLE{})
}

// RLE is a run-length-encoded column-major layout: for each attribute, a
// run count followed by (length, value) runs. Structured grid data
// compresses well under RLE — coordinate columns are long runs by
// construction (z and y repeat for entire planes and rows) — so chunks are
// smaller on disk and cheaper to transfer, at the price of a real
// decompression step in the extractor. This models the compressed
// application formats common for simulation output.
//
// Wire layout per column:  u32 numRuns, then numRuns × (u32 length,
// f32 value). Columns appear in schema order.
type RLE struct{}

// Name implements Extractor.
func (RLE) Name() string { return "rle" }

// Encode implements Extractor.
func (RLE) Encode(st *tuple.SubTable) ([]byte, error) {
	var out []byte
	var buf [4]byte
	for c := 0; c < st.Schema.NumAttrs(); c++ {
		col := st.Col(c)
		// First pass: count runs.
		runs := 0
		for i := 0; i < len(col); {
			j := i + 1
			for j < len(col) && col[j] == col[i] {
				j++
			}
			runs++
			i = j
		}
		binary.LittleEndian.PutUint32(buf[:], uint32(runs))
		out = append(out, buf[:]...)
		for i := 0; i < len(col); {
			j := i + 1
			for j < len(col) && col[j] == col[i] {
				j++
			}
			binary.LittleEndian.PutUint32(buf[:], uint32(j-i))
			out = append(out, buf[:]...)
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(col[i]))
			out = append(out, buf[:]...)
			i = j
		}
	}
	return out, nil
}

// Extract implements Extractor.
func (RLE) Extract(d *Desc, data []byte) (*tuple.SubTable, error) {
	schema := d.Schema()
	na := schema.NumAttrs()
	if na == 0 {
		return nil, fmt.Errorf("chunk: rle chunk %v has no attributes", d.ID())
	}
	cols := make([][]float32, na)
	off := 0
	rows := -1
	for c := 0; c < na; c++ {
		if len(data) < off+4 {
			return nil, fmt.Errorf("chunk: rle chunk %v: truncated at column %d header", d.ID(), c)
		}
		runs := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		var col []float32
		if rows > 0 {
			col = make([]float32, 0, rows)
		}
		for r := 0; r < runs; r++ {
			if len(data) < off+8 {
				return nil, fmt.Errorf("chunk: rle chunk %v: truncated run %d of column %d", d.ID(), r, c)
			}
			length := int(binary.LittleEndian.Uint32(data[off:]))
			value := math.Float32frombits(binary.LittleEndian.Uint32(data[off+4:]))
			off += 8
			if length == 0 || (rows >= 0 && len(col)+length > rows) {
				return nil, fmt.Errorf("chunk: rle chunk %v: invalid run length %d in column %d", d.ID(), length, c)
			}
			for k := 0; k < length; k++ {
				col = append(col, value)
			}
		}
		if rows < 0 {
			rows = len(col)
		} else if len(col) != rows {
			return nil, fmt.Errorf("chunk: rle chunk %v: column %d has %d rows, column 0 has %d",
				d.ID(), c, len(col), rows)
		}
		cols[c] = col
	}
	if off != len(data) {
		return nil, fmt.Errorf("chunk: rle chunk %v: %d trailing bytes", d.ID(), len(data)-off)
	}
	return tuple.FromColumns(d.ID(), schema, cols)
}
