// Package chunk defines data chunks — the contiguous flat-file segments
// that scientific datasets are stored in — and the extractor functions that
// interpret application-specific chunk layouts as sub-tables.
//
// Per the paper, a chunk is "the smallest unit of retrieval from the file
// system", and its metadata records which table it belongs to, its location
// (object + offset) and size, its attributes, the extractors that can parse
// it, and its bounding box. Extractors realize the paper's layered
// alternative to database ingestion: they map raw file segments to the
// standard sub-table structure.
package chunk

import (
	"fmt"
	"sort"
	"sync"

	"sciview/internal/bbox"
	"sciview/internal/tuple"
)

// Desc is the metadata record for one chunk, as stored by the MetaData
// Service.
type Desc struct {
	// Table and Chunk form the sub-table id (i, j).
	Table int32
	Chunk int32
	// Object, Offset and Size locate the chunk inside the storage node's
	// object store (a segment of a data file).
	Object string
	Offset int64
	Size   int64
	// Node is the storage node holding the chunk.
	Node int
	// Format names the extractor able to parse this chunk.
	Format string
	// Attrs is the chunk's schema (a chunk holds a subset of the dataset's
	// attributes for a subset of its records).
	Attrs []tuple.Attr
	// Rows is the number of records in the chunk.
	Rows int
	// Bounds is the chunk's bounding box over Attrs, in schema order.
	Bounds bbox.Box
	// Replicas are additional placements of the same bytes on other
	// storage nodes, for failover when Node is unreachable. The primary
	// placement (Node/Object/Offset) is not repeated here.
	Replicas []Replica
	// Version is the catalog version at which the chunk became visible.
	// Chunks loaded with the initial dataset carry the catalog's version at
	// load time (1 for a fresh catalog); appended chunks carry the version
	// their append batch committed. Queries pinned to version v see exactly
	// the chunks with Version <= v.
	Version int64
}

// Replica is one extra placement of a chunk: the same encoded bytes stored
// under a (possibly different) object name and offset on another node.
type Replica struct {
	Node   int
	Object string
	Offset int64
}

// ID returns the sub-table identifier of the chunk.
func (d *Desc) ID() tuple.ID { return tuple.ID{Table: d.Table, Chunk: d.Chunk} }

// Nodes returns every storage node holding a copy of the chunk, primary
// first, replicas in registration order.
func (d *Desc) Nodes() []int {
	nodes := make([]int, 0, 1+len(d.Replicas))
	nodes = append(nodes, d.Node)
	for _, r := range d.Replicas {
		nodes = append(nodes, r.Node)
	}
	return nodes
}

// Locate returns the object and offset of the chunk's copy on the given
// node, or ok=false if that node holds no copy.
func (d *Desc) Locate(node int) (object string, offset int64, ok bool) {
	if node == d.Node {
		return d.Object, d.Offset, true
	}
	for _, r := range d.Replicas {
		if r.Node == node {
			return r.Object, r.Offset, true
		}
	}
	return "", 0, false
}

// Schema returns the chunk's schema.
func (d *Desc) Schema() tuple.Schema { return tuple.Schema{Attrs: d.Attrs} }

// Extractor parses one application-specific chunk layout into a sub-table,
// and (for dataset generation and tests) serializes a sub-table back into
// that layout.
type Extractor interface {
	// Name is the format identifier referenced by Desc.Format.
	Name() string
	// Extract parses raw chunk bytes using the descriptor's schema.
	Extract(d *Desc, data []byte) (*tuple.SubTable, error)
	// Encode lays out a sub-table in this chunk format.
	Encode(st *tuple.SubTable) ([]byte, error)
}

// registry maps format names to extractors. The built-in formats register
// themselves in init; applications may add their own.
var (
	regMu    sync.RWMutex
	registry = make(map[string]Extractor)
)

// Register adds an extractor to the registry, replacing any previous
// extractor with the same name.
func Register(e Extractor) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[e.Name()] = e
}

// Lookup returns the extractor for a format name.
func Lookup(name string) (Extractor, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("chunk: no extractor registered for format %q", name)
	}
	return e, nil
}

// Formats returns the names of all registered formats, sorted.
func Formats() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Extract locates the extractor named by d.Format and parses data with it.
func Extract(d *Desc, data []byte) (*tuple.SubTable, error) {
	e, err := Lookup(d.Format)
	if err != nil {
		return nil, err
	}
	return e.Extract(d, data)
}
