//go:build ignore

// Generates the on-disk seed corpus for FuzzExtractors under
// testdata/fuzz/FuzzExtractors/: real RLE- and ColMajor-encoded chunks
// (full, truncated, and bit-flipped), so fuzzing starts from inputs that
// exercise the decoders' deep paths instead of rediscovering the framing
// from scratch. Run from this directory:
//
//	go run gen_corpus.go
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"sciview/internal/chunk"
	"sciview/internal/tuple"
)

func main() {
	schema := tuple.NewSchema(
		tuple.Attr{Name: "x", Kind: tuple.Coord},
		tuple.Attr{Name: "y", Kind: tuple.Coord},
		tuple.Attr{Name: "oilp", Kind: tuple.Measure},
	)
	r := rand.New(rand.NewSource(77))
	st := tuple.NewSubTable(tuple.ID{Table: 3, Chunk: 9}, schema, 9)
	for i := 0; i < 9; i++ {
		st.AppendRow(float32(r.Intn(100)), float32(r.Intn(100)), r.Float32())
	}
	// A run-heavy table: RLE's best case, so runs actually span rows.
	runs := tuple.NewSubTable(tuple.ID{Table: 3, Chunk: 10}, schema, 16)
	for i := 0; i < 16; i++ {
		runs.AppendRow(float32(i/8), 4, 0.5)
	}
	// A low-cardinality table: the wire codec's dictionary case — few
	// distinct values cycling with no exploitable run structure.
	dict := tuple.NewSubTable(tuple.ID{Table: 3, Chunk: 11}, schema, 24)
	pal := []float32{-1.5, 0, 2.25, 7}
	for i := 0; i < 24; i++ {
		dict.AppendRow(pal[i%4], pal[(i*3)%4], pal[(i*5)%4])
	}
	// A sequential-integer table: the wire codec's delta case — integral
	// coordinates stepping by small increments.
	delta := tuple.NewSubTable(tuple.ID{Table: 3, Chunk: 12}, schema, 24)
	for i := 0; i < 24; i++ {
		delta.AppendRow(float32(1000+i), float32(i*i), float32(-i))
	}

	dir := filepath.Join("testdata", "fuzz", "FuzzExtractors")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name, format string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\nstring(%q)\n[]byte(%q)\n", format, data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	for _, format := range []string{"rle", "colmajor"} {
		e, err := chunk.Lookup(format)
		if err != nil {
			log.Fatal(err)
		}
		data, err := e.Encode(st)
		if err != nil {
			log.Fatal(err)
		}
		write("seed_"+format, format, data)
		write("seed_"+format+"_truncated", format, data[:len(data)*2/3])
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/2] ^= 0x40
		write("seed_"+format+"_bitflip", format, flipped)

		runData, err := e.Encode(runs)
		if err != nil {
			log.Fatal(err)
		}
		write("seed_"+format+"_runs", format, runData)

		for name, table := range map[string]*tuple.SubTable{"dict": dict, "delta": delta} {
			data, err := e.Encode(table)
			if err != nil {
				log.Fatal(err)
			}
			write("seed_"+format+"_"+name, format, data)
			write("seed_"+format+"_"+name+"_truncated", format, data[:len(data)*2/3])
			flipped := append([]byte(nil), data...)
			flipped[len(flipped)/3] ^= 0x08
			write("seed_"+format+"_"+name+"_bitflip", format, flipped)
		}
	}
	fmt.Printf("wrote corpus to %s\n", dir)
}
