package chunk

import (
	"testing"

	"sciview/internal/tuple"
)

// FuzzExtractors feeds arbitrary bytes to every registered extractor: none
// may panic, and accepted data must re-encode losslessly.
func FuzzExtractors(f *testing.F) {
	st := testTable(9, 77)
	// Dictionary- and delta-patterned tables: the shapes the wire codec's
	// encoders pick up from extracted chunks (low-cardinality cycling
	// values; sequential integral coordinates).
	dict := tuple.NewSubTable(tuple.ID{Table: 3, Chunk: 11}, testSchema(), 24)
	delta := tuple.NewSubTable(tuple.ID{Table: 3, Chunk: 12}, testSchema(), 24)
	pal := []float32{-1.5, 0, 2.25, 7}
	for i := 0; i < 24; i++ {
		dict.AppendRow(pal[i%4], pal[(i*3)%4], pal[(i*5)%4])
		delta.AppendRow(float32(1000+i), float32(i*i), float32(-i))
	}
	for _, format := range []string{"rowmajor", "colmajor", "csv", "rle"} {
		e, _ := Lookup(format)
		for _, table := range []*tuple.SubTable{st, dict, delta} {
			data, _ := e.Encode(table)
			f.Add(format, data)
			if len(data) > 2 {
				f.Add(format, data[:len(data)-2])
			}
		}
	}
	f.Add("csv", []byte("1,2,3\n4,,6\n"))
	f.Add("rle", []byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, format string, data []byte) {
		e, err := Lookup(format)
		if err != nil {
			return
		}
		d := &Desc{Format: format, Attrs: testSchema().Attrs}
		got, err := e.Extract(d, data)
		if err != nil {
			return
		}
		re, err := e.Encode(got)
		if err != nil {
			t.Fatalf("re-encode of accepted chunk failed: %v", err)
		}
		got2, err := e.Extract(d, re)
		if err != nil {
			t.Fatalf("re-extract failed: %v", err)
		}
		if got2.NumRows() != got.NumRows() {
			t.Fatalf("round trip changed rows: %d vs %d", got2.NumRows(), got.NumRows())
		}
		for r := 0; r < got.NumRows(); r++ {
			for c := 0; c < got.Schema.NumAttrs(); c++ {
				a, b := got.Value(r, c), got2.Value(r, c)
				if a != b && !(a != a && b != b) { // NaN-tolerant
					t.Fatalf("(%d,%d): %v vs %v", r, c, a, b)
				}
			}
		}
	})
}

var _ = tuple.AttrSize // anchor import
