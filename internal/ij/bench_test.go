package ij

import (
	"fmt"
	"testing"

	"sciview/internal/cluster"
	"sciview/internal/metrics"
	"sciview/internal/oilres"
	"sciview/internal/partition"
)

// BenchmarkIJWorkload measures end-to-end IJ wall clock on a throttled
// cluster sized so per-joiner network wait and modeled CPU time are
// comparable (~16ms each): the regime where prefetch overlap pays. The
// prefetch=0 run is the sequential fetch→build→probe baseline; prefetch=2
// overlaps the next edges' fetches with the current edge's compute.
func BenchmarkIJWorkload(b *testing.B) {
	grid := partition.D(32, 32, 32)
	pq := partition.D(8, 8, 8)
	ds, err := oilres.Generate(oilres.Config{
		Grid: grid, LeftPart: pq, RightPart: pq, StorageNodes: 4, Seed: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{0, 2} {
		b.Run(fmt.Sprintf("prefetch=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cl, err := cluster.New(cluster.Config{
					StorageNodes: 4, ComputeNodes: 4, CacheBytes: 64 << 20,
					NetBw: 16 << 20, CPUSecPerOp: 1e-6,
				}, ds.Catalog, ds.Stores)
				if err != nil {
					b.Fatal(err)
				}
				r := req()
				r.Prefetch = depth
				b.StartTimer()
				res, err := New().Run(cl, r)
				if err != nil {
					b.Fatal(err)
				}
				if res.Tuples != grid.Cells() {
					b.Fatalf("tuples = %d, want %d", res.Tuples, grid.Cells())
				}
			}
		})
	}
}

// BenchmarkIJMetricsOverhead runs the same IJ workload with instrumentation
// absent (nil registry: every instrument call is a nil-receiver no-op) and
// present (live registry: cache hit/miss, fetch, singleflight and breaker
// counters all firing on the hot path). The delta between the two legs is
// the full observability tax; the differential harness' companion check in
// scripts/bench.sh asserts it stays within a few percent of wall clock.
func BenchmarkIJMetricsOverhead(b *testing.B) {
	grid := partition.D(32, 32, 32)
	pq := partition.D(8, 8, 8)
	ds, err := oilres.Generate(oilres.Config{
		Grid: grid, LeftPart: pq, RightPart: pq, StorageNodes: 4, Seed: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, leg := range []struct {
		name string
		reg  func() *metrics.Registry
	}{
		{"noop", func() *metrics.Registry { return nil }},
		{"instrumented", metrics.NewRegistry},
	} {
		b.Run(leg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cl, err := cluster.New(cluster.Config{
					StorageNodes: 4, ComputeNodes: 4, CacheBytes: 64 << 20,
					NetBw: 16 << 20, CPUSecPerOp: 1e-6,
					Metrics: leg.reg(),
				}, ds.Catalog, ds.Stores)
				if err != nil {
					b.Fatal(err)
				}
				r := req()
				r.Prefetch = 2
				b.StartTimer()
				res, err := New().Run(cl, r)
				if err != nil {
					b.Fatal(err)
				}
				if res.Tuples != grid.Cells() {
					b.Fatalf("tuples = %d, want %d", res.Tuples, grid.Cells())
				}
			}
		})
	}
}
