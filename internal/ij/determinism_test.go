package ij

import (
	"bytes"
	"testing"

	"sciview/internal/partition"
	"sciview/internal/tuple"
)

// encodeCollected serializes every joiner output in joiner order, giving a
// byte-exact fingerprint of the full result.
func encodeCollected(sts []*tuple.SubTable) []byte {
	var buf []byte
	for _, st := range sts {
		buf = tuple.Encode(buf, st)
	}
	return buf
}

// TestPipelinedByteIdentical pins the tentpole contract: turning on
// prefetch and kernel parallelism changes overlap and wall clock only —
// the collected outputs are byte-for-byte those of the sequential run.
func TestPipelinedByteIdentical(t *testing.T) {
	grid := partition.D(16, 16, 8)
	q := partition.D(4, 4, 4)

	run := func(prefetch, parallelism int) []byte {
		cl := makeCluster(t, grid, q, q, 2, 3, 32<<20)
		r := req()
		r.Collect = true
		r.Prefetch = prefetch
		r.Parallelism = parallelism
		res, err := New().Run(cl, r)
		if err != nil {
			t.Fatal(err)
		}
		return encodeCollected(res.Collected)
	}

	sequential := run(0, 1)
	for _, tc := range []struct{ prefetch, parallelism int }{
		{2, 1}, // prefetch only
		{0, 4}, // parallel kernels only
		{2, 4}, // both
		{8, 0}, // deep lookahead, all CPUs
	} {
		if got := run(tc.prefetch, tc.parallelism); !bytes.Equal(got, sequential) {
			t.Errorf("prefetch=%d parallelism=%d: collected output differs from sequential run",
				tc.prefetch, tc.parallelism)
		}
	}
}

// TestPrefetchCountersMatchSequential pins the accounting contract: the
// prefetcher warms the cache stat-free and through the same singleflight
// the demand path uses, so the demand lookup count is unchanged and every
// distinct sub-table still moves over the network exactly once (a prefetch
// the joiner overtakes counts as the demand path's one miss; a prefetch
// that completes first upgrades that miss to a hit — never a second fetch).
func TestPrefetchCountersMatchSequential(t *testing.T) {
	grid := partition.D(16, 16, 8)
	q := partition.D(4, 4, 4)

	counters := func(prefetch int) (misses, lookups, netBytes int64) {
		cl := makeCluster(t, grid, q, q, 2, 3, 32<<20)
		r := req()
		r.Prefetch = prefetch
		res, err := New().Run(cl, r)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cache.Misses, res.Cache.Misses + res.Cache.Hits, res.Traffic.NetBytesToCompute
	}

	m0, l0, b0 := counters(0)
	m2, l2, b2 := counters(2)
	if l0 != l2 {
		t.Errorf("demand lookups changed under prefetch: %d→%d", l0, l2)
	}
	if m2 > m0 {
		t.Errorf("prefetch added misses: %d→%d", m0, m2)
	}
	if b0 != b2 {
		t.Errorf("net bytes changed under prefetch: %d→%d (sub-table fetched twice?)", b0, b2)
	}
}
