// Package ij implements the page-level Indexed Join QES.
//
// The sub-table connectivity graph (page-level join index) gives the
// candidate sub-table pairs. Scheduling follows the paper's two-stage
// strategy: connected components are dealt round-robin to compute-node QES
// instances so each gets the same amount of work, then each instance sorts
// its local id pairs lexicographically by ((i1,j1),(i2,j2)). Sub-tables are
// fetched from BDS instances through the per-node LRU Caching Service; the
// lexicographic order makes all edges of one left sub-table consecutive, so
// a hash table is built only once per left sub-table.
package ij

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sciview/internal/chunk"
	"sciview/internal/cluster"
	"sciview/internal/congraph"
	"sciview/internal/engine"
	"sciview/internal/fault"
	"sciview/internal/hashjoin"
	"sciview/internal/metadata"
	"sciview/internal/scratch"
	"sciview/internal/trace"
	"sciview/internal/tuple"
)

// Schedule selects the edge-scheduling strategy. The paper's two-stage
// strategy is the default; the alternatives exist as ablations of its
// design choices (see the harness's schedule ablation).
type Schedule int

const (
	// ScheduleComponent is the paper's strategy: components dealt
	// round-robin to joiners, edges sorted lexicographically within each
	// component and components processed one after another.
	ScheduleComponent Schedule = iota
	// ScheduleGlobalLex deals components round-robin but sorts each
	// joiner's full edge list lexicographically, interleaving components
	// and breaking the working-set guarantee.
	ScheduleGlobalLex
	// ScheduleRandom ignores components entirely: edges are dealt
	// round-robin in a deterministic shuffled order, so sub-tables are
	// fetched by several joiners and locality is destroyed.
	ScheduleRandom
	// ScheduleOPAS applies an Optimal-Page-Access-Sequence-style greedy
	// heuristic (the related work's approach) to each joiner's edges,
	// simulating the node cache to pick the cheapest next edge.
	ScheduleOPAS
)

func (s Schedule) String() string {
	switch s {
	case ScheduleComponent:
		return "component"
	case ScheduleGlobalLex:
		return "global-lex"
	case ScheduleRandom:
		return "random"
	case ScheduleOPAS:
		return "opas"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Engine is the Indexed Join QES. The zero value is ready to use and uses
// the paper's scheduling strategy.
type Engine struct {
	// Schedule overrides the edge-scheduling strategy (ablations only).
	Schedule Schedule
}

// New returns an Indexed Join engine.
func New() *Engine { return &Engine{} }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "ij" }

// edge is a scheduled sub-table pair with resolved ids.
type edge struct {
	left  tuple.ID
	right tuple.ID
}

// Run implements engine.Engine.
func (e *Engine) Run(cl *cluster.Cluster, req engine.Request) (*engine.Result, error) {
	return e.RunContext(context.Background(), cl, req)
}

// RunContext implements engine.Engine. Cancellation is observed between
// scheduled edges and inside sub-table fetches.
func (e *Engine) RunContext(ctx context.Context, cl *cluster.Cluster, req engine.Request) (*engine.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	wf := req.WorkFactor
	if wf < 1 {
		wf = 1
	}
	leftDef, err := cl.Catalog.Table(req.LeftTable)
	if err != nil {
		return nil, err
	}
	rightDef, err := cl.Catalog.Table(req.RightTable)
	if err != nil {
		return nil, err
	}
	leftFilter := engineFilterFor(leftDef, req.Filter)
	leftFilter.Versions = req.LeftWindow()
	rightFilter := engineFilterFor(rightDef, req.Filter)
	rightFilter.Versions = req.RightWindow()

	if req.Shared {
		cl.AcquireShared()
		defer cl.ReleaseShared()
	} else {
		cl.AcquireRun()
		defer cl.ReleaseRun()
		cl.Reset()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()

	// Consult the (pre-computable) page-level join index: resolve in-range
	// chunks and their connectivity.
	leftDescs, err := cl.Catalog.ChunksInRange(req.LeftTable, leftFilter)
	if err != nil {
		return nil, err
	}
	rightDescs, err := cl.Catalog.ChunksInRange(req.RightTable, rightFilter)
	if err != nil {
		return nil, err
	}
	graph, err := congraph.Build(leftDescs, rightDescs, req.JoinAttrs)
	if err != nil {
		return nil, err
	}
	comps := graph.Components()

	nj := len(cl.Compute)
	schedules := e.buildSchedules(comps, leftDescs, rightDescs, nj, cl.Config.CacheBytes)

	// The per-edge build-side memory cap from the request's admission
	// budget: each joiner may hold a build and a probe sub-table at once,
	// hence the 2·nj divisor. 0 = unbounded (no admission budget set).
	var memCap int64
	if req.MemoryBudget > 0 {
		memCap = req.MemoryBudget / int64(2*nj)
		if memCap < 1 {
			memCap = 1
		}
	}

	// Publish the schedule size so streaming consumers can report the
	// fraction of edges an early-terminated query actually joined. Joined
	// counts executed edges, so fault-driven replays can push it past
	// Total; an undisturbed full run ends with Joined == Total.
	prog := req.Progress
	if prog == nil {
		prog = &engine.Progress{}
		req.Progress = prog
	}
	for _, sched := range schedules {
		prog.Total.Add(int64(len(sched)))
	}

	project := req.EffectiveProject()
	outSchema := engine.ProjectedSchema(leftDef.Schema, project).
		JoinResult(engine.ProjectedSchema(rightDef.Schema, project), req.JoinAttrs, "r_")
	var stats hashjoin.Stats
	obs := &engine.ObsCollector{}
	results := make([]*tuple.SubTable, nj)
	errs := make([]error, nj)
	var wg sync.WaitGroup
	for slot := 0; slot < nj; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			results[slot], errs[slot] = e.runSlot(ctx, cl, slot, schedules[slot], req, wf, memCap,
				leftFilter, rightFilter, project, outSchema, &stats, obs)
		}(slot)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &engine.Result{
		Engine:  e.Name(),
		Elapsed: time.Since(start),
		Join: engine.JoinCounts{
			TuplesBuilt:  stats.TuplesBuilt.Load(),
			TuplesProbed: stats.TuplesProbed.Load(),
			Matches:      stats.Matches.Load(),
		},
		Traffic: cl.Traffic(),
		Health:  cl.HealthStats(),
		Phases:  map[string]time.Duration{},
	}
	res.Tuples = res.Join.Matches
	res.UnitsJoined = prog.Joined.Load()
	res.UnitsTotal = prog.Total.Load()
	res.Observed = obs.Snapshot()
	for _, cn := range cl.Compute {
		s := cn.Cache.Stats()
		res.Cache.Hits += s.Hits
		res.Cache.Misses += s.Misses
		res.Cache.Evictions += s.Evictions
	}
	if req.Collect && req.Sink == nil {
		res.Collected = results
	}
	return res, nil
}

// buildSchedules assigns edges to joiner nodes per the engine's strategy.
//
// The default (ScheduleComponent) is the paper's two-stage strategy.
// Stage 1 deals connected components round-robin to joiner nodes, so every
// QES instance gets the same amount of work. Stage 2 sorts the id pairs of
// each component lexicographically by ((i1,j1),(i2,j2)) and processes
// components one after another. Component-local order is what gives the
// paper's no-eviction guarantee under the memory assumption
// (cache ≥ 2·c_R + b·c_S): a component's right sub-tables stay cached
// while its left sub-tables stream through once each.
func (e *Engine) buildSchedules(comps []congraph.Component, leftDescs, rightDescs []*chunk.Desc, nj int, cacheBytes int64) [][]edge {
	if e.Schedule == ScheduleOPAS {
		return opasSchedules(comps, leftDescs, rightDescs, nj, cacheBytes)
	}
	schedules := make([][]edge, nj)
	mk := func(ce congraph.Edge) edge {
		return edge{left: leftDescs[ce.Left].ID(), right: rightDescs[ce.Right].ID()}
	}
	lexSort := func(sched []edge) {
		sort.Slice(sched, func(a, b int) bool {
			if sched[a].left != sched[b].left {
				return sched[a].left.Less(sched[b].left)
			}
			return sched[a].right.Less(sched[b].right)
		})
	}
	switch e.Schedule {
	case ScheduleGlobalLex:
		for k, comp := range comps {
			j := k % nj
			for _, ce := range comp.Edges {
				schedules[j] = append(schedules[j], mk(ce))
			}
		}
		for _, sched := range schedules {
			lexSort(sched)
		}
	case ScheduleRandom:
		var all []edge
		for _, comp := range comps {
			for _, ce := range comp.Edges {
				all = append(all, mk(ce))
			}
		}
		rng := rand.New(rand.NewSource(1))
		rng.Shuffle(len(all), func(a, b int) { all[a], all[b] = all[b], all[a] })
		for i, ed := range all {
			schedules[i%nj] = append(schedules[i%nj], ed)
		}
	default: // ScheduleComponent
		for k, comp := range comps {
			j := k % nj
			start := len(schedules[j])
			for _, ce := range comp.Edges {
				schedules[j] = append(schedules[j], mk(ce))
			}
			lexSort(schedules[j][start:])
		}
	}
	return schedules
}

// runSlot drives one schedule slot to completion. The slot's executor is
// initially the compute node of the same index; if that node dies mid-run
// (detected by a NodeDownError naming it), the stage-1 plan is revised in
// place — the slot's whole component schedule is re-run on the next
// surviving node. Re-running from the top is safe: per-attempt output and
// join stats are discarded on failure and merged only on success, edges
// replay in the same order, and survivors' caches stay valid (warm, even,
// for sub-tables the slot shares with their own schedules), so the
// recovered output is byte-identical to an undisturbed run.
func (e *Engine) runSlot(ctx context.Context, cl *cluster.Cluster, slot int, sched []edge, req engine.Request,
	wf int, memCap int64, leftFilter, rightFilter metadata.Range, project []string, outSchema tuple.Schema,
	stats *hashjoin.Stats, obs *engine.ObsCollector) (*tuple.SubTable, error) {

	exec := slot
	for {
		if cl.ComputeDown(exec) {
			next, ok := nextAlive(cl, exec)
			if !ok {
				return nil, fmt.Errorf("ij: slot %d: no compute nodes left", slot)
			}
			exec = next
		}
		var local hashjoin.Stats
		out, err := e.runJoiner(ctx, cl, slot, exec, sched, req, wf, memCap,
			leftFilter, rightFilter, project, outSchema, &local, obs)
		if err == nil {
			mergeStats(stats, &local)
			if req.Sink != nil {
				req.Sink.Done(slot)
			}
			return out, nil
		}
		if node, down := fault.IsNodeDown(err); down && node == fault.ComputeNode(exec) {
			// The executor itself died. Discard its partial work and hand
			// the slot to a survivor.
			if req.Sink != nil {
				req.Sink.Discard(slot)
			}
			cl.Health.Recoveries.Add(1)
			start := time.Now()
			req.Trace.Span(fmt.Sprintf("joiner-%d", slot), trace.KindRecover,
				fmt.Sprintf("compute-%d died, slot re-assigned", exec), start, 0, int64(len(sched)))
			continue
		}
		return nil, err
	}
}

// nextAlive returns the first surviving compute node after `from` in ring
// order.
func nextAlive(cl *cluster.Cluster, from int) (int, bool) {
	n := len(cl.Compute)
	for d := 1; d <= n; d++ {
		j := (from + d) % n
		if !cl.ComputeDown(j) {
			return j, true
		}
	}
	return 0, false
}

// mergeStats folds a slot attempt's local counters into the run total.
func mergeStats(dst, src *hashjoin.Stats) {
	dst.TuplesBuilt.Add(src.TuplesBuilt.Load())
	dst.TuplesProbed.Add(src.TuplesProbed.Load())
	dst.Matches.Add(src.Matches.Load())
}

// runJoiner executes one slot's schedule on compute node exec. The output
// sub-table keeps the slot's id, so results do not depend on which node
// ran the work.
//
// With req.Prefetch > 0 the joiner overlaps I/O with compute: before
// working edge i it issues background cachedFetch calls for this edge's
// right sub-table and both sub-tables of edges i+1..i+Prefetch. Stage-2's
// lexicographic edge order makes the lookahead exact — the fetches issued
// are precisely the ones the strict loop would issue next — and the Flight
// singleflight makes the foreground fetch join the in-flight prefetch
// rather than duplicate it. Prefetch failures are swallowed here: the
// foreground fetch retries and surfaces any real error, and on early exit
// (error, cancellation, injected crash) the deferred cancel-and-wait below
// reaps every in-flight prefetch before the slot is re-assigned.
func (e *Engine) runJoiner(ctx context.Context, cl *cluster.Cluster, slot, exec int, sched []edge, req engine.Request,
	wf int, memCap int64, leftFilter, rightFilter metadata.Range, project []string, outSchema tuple.Schema,
	stats *hashjoin.Stats, obs *engine.ObsCollector) (*tuple.SubTable, error) {

	out := tuple.NewSubTable(tuple.ID{Table: -1, Chunk: int32(slot)}, outSchema, 0)
	cn := cl.Compute[exec]
	node := fmt.Sprintf("joiner-%d", slot)
	// Lazily-mounted scratch manager for build sides that overflow the
	// memory cap; reaped when the attempt ends, however it ends.
	var mgr *scratch.Manager
	spillMgr := func() *scratch.Manager {
		if mgr == nil {
			mgr = scratch.NewManager(cn.Scratch,
				fmt.Sprintf("ij/r%d/s%d", spillSeq.Add(1), slot), node, req.Trace, obs)
		}
		return mgr
	}
	defer func() {
		if mgr != nil {
			mgr.ReleaseAll()
		}
	}()
	leftSig := cluster.Signature(&leftFilter, project)
	rightSig := cluster.Signature(&rightFilter, project)

	depth := req.Prefetch
	var (
		pwg     sync.WaitGroup
		pctx    context.Context
		pcancel context.CancelFunc
		issued  map[cluster.FetchKey]struct{}
	)
	if depth > 0 {
		pctx, pcancel = context.WithCancel(ctx)
		defer pwg.Wait() // runs after pcancel: cancel, then reap
		defer pcancel()
		issued = make(map[cluster.FetchKey]struct{})
	}
	// prefetch launches one background fetch per distinct key; issued is
	// only touched by the foreground loop. The background path peeks the
	// cache stat-free and joins the Flight group, so the cache hit/miss
	// counters keep reflecting foreground demand only: a sub-table still
	// in flight when the joiner needs it counts as the same single miss
	// the strict loop would record.
	prefetch := func(id tuple.ID, sig uint64, filter *metadata.Range) {
		key := cluster.FetchKey{ID: id, Sig: sig}
		if _, done := issued[key]; done {
			return
		}
		issued[key] = struct{}{}
		if _, ok := cn.Cache.Peek(key); ok {
			return
		}
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			start := time.Now()
			f, err := e.flightFetch(pctx, cl, exec, node, key, id, filter, project, req.Trace, obs)
			if err != nil {
				return
			}
			req.Trace.Span(node, trace.KindPrefetch, id.String(), start,
				int64(f.DecodedBytes()), int64(f.NumRows()))
		}()
	}

	var (
		ht     *hashjoin.HashTable
		htLeft tuple.ID
		haveHT bool
	)
	for i, ed := range sched {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// One scheduled edge is one countable operation on the executor:
		// the chaos schedule can crash the node here, mid-schedule.
		if err := cl.Config.Faults.Op(fault.ComputeNode(exec), fault.OpEdge); err != nil {
			return nil, err
		}
		if depth > 0 {
			prefetch(ed.right, rightSig, &rightFilter) // overlaps this edge's build
			for d := 1; d <= depth && i+d < len(sched); d++ {
				prefetch(sched[i+d].left, leftSig, &leftFilter)
				prefetch(sched[i+d].right, rightSig, &rightFilter)
			}
		}
		left, err := e.cachedFetch(ctx, cl, exec, node, ed.left, leftSig, &leftFilter, project, req.Trace, obs)
		if err != nil {
			return nil, err
		}
		if memCap > 0 && int64(left.Bytes()) > memCap {
			// Out-of-core edge: the build side exceeds its admission share.
			// The shared spilled join bounds the build, round-tripping
			// partitions through this joiner's scratch disk; its output is
			// byte-identical to the in-memory probe. The cached hash table
			// is not built (or reused) for an oversized left sub-table.
			haveHT = false
			right, err := e.cachedFetch(ctx, cl, exec, node, ed.right, rightSig, &rightFilter, project, req.Trace, obs)
			if err != nil {
				return nil, err
			}
			if err := spillEdge(cn, spillMgr(), node, ed, left, right, req, wf, memCap, out, stats, obs); err != nil {
				return nil, err
			}
			if err := finishEdge(slot, req, &out, outSchema); err != nil {
				return nil, err
			}
			continue
		}
		if !haveHT || htLeft != ed.left {
			start := time.Now()
			ht, err = hashjoin.BuildParallel(left, req.JoinAttrs, wf, req.Parallelism, stats)
			if err != nil {
				return nil, err
			}
			htLeft, haveHT = ed.left, true
			cn.SpendCPU(int64(left.NumRows()) * int64(wf))
			obs.Build(int64(left.NumRows())*int64(wf), time.Since(start))
			req.Trace.Span(node, trace.KindBuild, ed.left.String(), start,
				int64(left.Bytes()), int64(left.NumRows()))
		}
		right, err := e.cachedFetch(ctx, cl, exec, node, ed.right, rightSig, &rightFilter, project, req.Trace, obs)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := ht.ProbeParallel(right, req.JoinAttrs, wf, req.Parallelism, out, stats); err != nil {
			return nil, err
		}
		cn.SpendCPU(int64(right.NumRows()) * int64(wf))
		obs.Probe(int64(right.NumRows())*int64(wf), time.Since(start))
		req.Trace.Span(node, trace.KindProbe, ed.right.String(), start,
			int64(right.Bytes()), int64(right.NumRows()))
		if err := finishEdge(slot, req, &out, outSchema); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// spillSeq namespaces the scratch files of concurrent spilling joiners.
var spillSeq atomic.Int64

// spillPart is the salted partition hash for recursive build-side
// splits (splitmix-style avalanche; the salt decorrelates depths).
func spillPart(key, salt uint64) uint64 {
	key ^= (salt + 1) * 0x9E3779B97F4A7C15
	key ^= key >> 33
	key *= 0xFF51AFD7ED558CCD
	key ^= key >> 33
	key *= 0xC4CEB9FE1A85EC53
	key ^= key >> 33
	return key
}

// Overflow recursion bounds for spilled edges.
const (
	spillFanout   = 8
	spillMaxDepth = 3
)

// spillEdge joins one oversized edge through hashjoin.JoinPairSpill,
// billing CPU, observations, and trace spans exactly like the in-memory
// path does per leaf.
func spillEdge(cn *cluster.ComputeNode, mgr *scratch.Manager, node string, ed edge,
	left, right *tuple.SubTable, req engine.Request, wf int, memCap int64,
	out *tuple.SubTable, stats *hashjoin.Stats, obs *engine.ObsCollector) error {

	hooks := hashjoin.SpillHooks{
		RoundTrip: func(lbl string, st *tuple.SubTable) (*tuple.SubTable, error) {
			f := mgr.Create("ov-" + lbl)
			data := scratch.EncodeRows(st)
			err := f.AppendRows(data, int64(st.NumRows()))
			tuple.PutBuf(data)
			if err != nil {
				return nil, err
			}
			back, err := f.ReadAll()
			if err != nil {
				return nil, err
			}
			rt, err := scratch.DecodeRows(st.Schema, back, st.ID)
			mgr.Release(f)
			return rt, err
		},
		Built: func(lbl string, st *tuple.SubTable, start time.Time) {
			cn.SpendCPU(int64(st.NumRows()) * int64(wf))
			obs.Build(int64(st.NumRows())*int64(wf), time.Since(start))
			req.Trace.Span(node, trace.KindBuild, lbl, start,
				int64(st.Bytes()), int64(st.NumRows()))
		},
		Probed: func(lbl string, st *tuple.SubTable, start time.Time) {
			cn.SpendCPU(int64(st.NumRows()) * int64(wf))
			obs.Probe(int64(st.NumRows())*int64(wf), time.Since(start))
			req.Trace.Span(node, trace.KindProbe, lbl, start,
				int64(st.Bytes()), int64(st.NumRows()))
		},
	}
	_, _, err := hashjoin.JoinPairSpill(left, right, req.JoinAttrs,
		ed.left.String()+"x"+ed.right.String(), wf, req.Parallelism,
		memCap, spillFanout, spillMaxDepth, spillPart, hooks, out, stats)
	return err
}

// finishEdge is the per-edge epilogue: progress accounting and output
// hand-off (streaming sinks take ownership of non-empty batches).
func finishEdge(slot int, req engine.Request, out **tuple.SubTable, outSchema tuple.Schema) error {
	if req.Progress != nil {
		req.Progress.Joined.Add(1)
	}
	if req.Sink != nil {
		if (*out).NumRows() > 0 {
			if err := req.Sink.Emit(slot, *out); err != nil {
				return err
			}
			*out = tuple.NewSubTable(tuple.ID{Table: -1, Chunk: int32(slot)}, outSchema, 0)
		}
	} else if !req.Collect {
		(*out).Reset()
	}
	return nil
}

// cachedFetch consults the joiner's Caching Service before asking the
// owning BDS instance for the sub-table. Concurrent misses on one key —
// several shared queries needing the same sub-table at once — collapse
// into a single BDS fetch through the node's Flight deduplicator. The
// cache holds wire-form carriers (compressed under the colenc codec);
// the decode back to rows here is exact, so results never depend on the
// negotiated format.
func (e *Engine) cachedFetch(ctx context.Context, cl *cluster.Cluster, j int, node string, id tuple.ID, sig uint64, filter *metadata.Range, project []string, rec *trace.Recorder, obs *engine.ObsCollector) (*tuple.SubTable, error) {
	cn := cl.Compute[j]
	key := cluster.FetchKey{ID: id, Sig: sig}
	if f, ok := cn.Cache.Get(key); ok {
		return f.SubTable()
	}
	f, err := e.flightFetch(ctx, cl, j, node, key, id, filter, project, rec, obs)
	if err != nil {
		return nil, err
	}
	return f.SubTable()
}

// flightFetch is cachedFetch after the demand-path cache probe: it joins
// the node's Flight group for key and, as leader, fetches from the owning
// BDS and populates the cache. Prefetchers enter here directly so their
// speculative lookups never touch the cache's hit/miss counters.
func (e *Engine) flightFetch(ctx context.Context, cl *cluster.Cluster, j int, node string, key cluster.FetchKey, id tuple.ID, filter *metadata.Range, project []string, rec *trace.Recorder, obs *engine.ObsCollector) (*cluster.Fetched, error) {
	cn := cl.Compute[j]
	f, _, err := cn.Flight.Do(ctx, key, func() (*cluster.Fetched, error) {
		// Another query may have populated the cache while this caller
		// was queued behind a leader that then failed or was cancelled.
		// Peek is one racy-window-free lookup (a single critical section,
		// unlike the old Contains-then-Get pair, which could observe the
		// entry and then lose it to an eviction between the two calls) and
		// is stat-free, so the common path's miss accounting stays
		// one-miss-per-fetch: only the demand-path Get above counts.
		if f, ok := cn.Cache.Peek(key); ok {
			return f, nil
		}
		start := time.Now()
		f, err := cl.FetchEncoded(ctx, j, id, filter, project)
		if err != nil {
			return nil, err
		}
		// Only the singleflight leader reaches here, so this times the
		// true wire transfer once per fetch: cache hits and piggybacked
		// followers never dilute the calibrated bandwidth. Decoded bytes
		// over wire-busy time makes compression show up as a faster
		// effective link, which is exactly how the transfer term prices it.
		obs.Fetch(int64(f.DecodedBytes()), time.Since(start))
		rec.Span(node, trace.KindFetch, id.String(), start, int64(f.DecodedBytes()), int64(f.NumRows()))
		// Charge the stored (possibly compressed) size, not the decoded
		// record size: admission and eviction track resident reality, and
		// under the colenc codec more sub-tables fit per node.
		cn.Cache.Put(key, f, int64(f.StoredBytes()))
		return f, nil
	})
	return f, err
}

// engineFilterFor keeps only the constraints naming attributes of def's
// schema — constraints on the other table's attributes do not apply here.
func engineFilterFor(def *metadata.TableDef, f metadata.Range) metadata.Range {
	var out metadata.Range
	for i, a := range f.Attrs {
		if def.Schema.Index(a) < 0 {
			continue
		}
		out.Attrs = append(out.Attrs, a)
		out.Lo = append(out.Lo, f.Lo[i])
		out.Hi = append(out.Hi, f.Hi[i])
	}
	return out
}

// verify interface compliance.
var _ engine.Engine = (*Engine)(nil)

// CacheBytesFor returns the per-joiner cache capacity satisfying the
// paper's memory assumption for ideal IJ behaviour: at least
// 2·c_R·RS_R + b·c_S·RS_S bytes (two left sub-tables plus one component's
// right sub-tables).
func CacheBytesFor(cR int64, rsR int, b int64, cS int64, rsS int) int64 {
	return 2*cR*int64(rsR) + b*cS*int64(rsS)
}

// String describes the engine.
func (e *Engine) String() string { return "IndexedJoin" }
