package ij

import (
	"sort"

	"sciview/internal/chunk"
	"sciview/internal/congraph"
	"sciview/internal/tuple"
)

// The Optimal Page Access Sequence (OPAS) problem — ordering an indexed
// join's page pairs to minimize page fetches under a buffer-size
// constraint — is the related work the paper positions itself against
// ([Chan & Ooi 97], [Fotouhi & Pramanik 89], [Xiao et al. 01]): "their
// algorithms may be used to schedule the sub-table pairs in the IJ
// algorithm". ScheduleOPAS does exactly that: a greedy
// fewest-missing-bytes-next heuristic over each joiner's edges, driven by
// a simulated cache of the configured capacity.
//
// On the paper's regularly partitioned datasets with the memory assumption
// satisfied, the component schedule is already fetch-optimal and OPAS
// matches it; below the memory bound, OPAS adapts the order (e.g. flipping
// to right-major traversal when left sub-tables are the cheaper side to
// re-fetch) and strictly reduces re-transfer volume.

// opasOrder greedily orders one joiner's edges: at each step pick the edge
// whose un-cached endpoints cost the fewest bytes to fetch, simulating the
// node's LRU as it goes. Ties break lexicographically for determinism.
func opasOrder(edges []edge, sizes map[edgeKey]int64, cacheBytes int64) []edge {
	type cacheEnt struct {
		key   edgeKey
		size  int64
		stamp int
	}
	cached := make(map[edgeKey]*cacheEnt)
	var used int64
	clock := 0

	touch := func(k edgeKey, size int64) {
		clock++
		if e, ok := cached[k]; ok {
			e.stamp = clock
			return
		}
		if size > cacheBytes {
			return
		}
		for used+size > cacheBytes {
			// Evict the least recently touched entry.
			var victim *cacheEnt
			for _, e := range cached {
				if victim == nil || e.stamp < victim.stamp {
					victim = e
				}
			}
			if victim == nil {
				break
			}
			used -= victim.size
			delete(cached, victim.key)
		}
		cached[k] = &cacheEnt{key: k, size: size, stamp: clock}
		used += size
	}
	missing := func(ed edge) int64 {
		var m int64
		lk, rk := edgeKey(ed.left), edgeKey(ed.right)
		if _, ok := cached[lk]; !ok {
			m += sizes[lk]
		}
		if _, ok := cached[rk]; !ok {
			m += sizes[rk]
		}
		return m
	}

	remaining := append([]edge(nil), edges...)
	out := make([]edge, 0, len(edges))
	for len(remaining) > 0 {
		best := 0
		bestCost := missing(remaining[0])
		for i := 1; i < len(remaining); i++ {
			cost := missing(remaining[i])
			if cost < bestCost || (cost == bestCost && lessEdge(remaining[i], remaining[best])) {
				best, bestCost = i, cost
			}
		}
		ed := remaining[best]
		remaining[best] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		out = append(out, ed)
		touch(edgeKey(ed.left), sizes[edgeKey(ed.left)])
		touch(edgeKey(ed.right), sizes[edgeKey(ed.right)])
	}
	return out
}

// edgeKey is a sub-table id usable as a map key.
type edgeKey = tuple.ID

func lessEdge(a, b edge) bool {
	if a.left != b.left {
		return a.left.Less(b.left)
	}
	return a.right.Less(b.right)
}

// opasSchedules deals components round-robin (work balance, as in the
// paper) and then OPAS-orders each joiner's edge list.
func opasSchedules(comps []congraph.Component, leftDescs, rightDescs []*chunk.Desc, nj int, cacheBytes int64) [][]edge {
	sizes := make(map[edgeKey]int64)
	record := func(d *chunk.Desc) {
		sizes[edgeKey(d.ID())] = int64(d.Rows) * int64(d.Schema().RecordSize())
	}
	for _, d := range leftDescs {
		record(d)
	}
	for _, d := range rightDescs {
		record(d)
	}
	schedules := make([][]edge, nj)
	for k, comp := range comps {
		j := k % nj
		for _, ce := range comp.Edges {
			schedules[j] = append(schedules[j], edge{
				left:  leftDescs[ce.Left].ID(),
				right: rightDescs[ce.Right].ID(),
			})
		}
	}
	for j := range schedules {
		// Deterministic starting order before the greedy pass.
		sort.Slice(schedules[j], func(a, b int) bool { return lessEdge(schedules[j][a], schedules[j][b]) })
		schedules[j] = opasOrder(schedules[j], sizes, cacheBytes)
	}
	return schedules
}
