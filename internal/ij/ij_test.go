package ij

import (
	"testing"

	"sciview/internal/cluster"
	"sciview/internal/engine"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/tuple"
)

func makeCluster(t *testing.T, grid, p, q partition.Dims, ns, nj int, cacheBytes int64) *cluster.Cluster {
	t.Helper()
	ds, err := oilres.Generate(oilres.Config{
		Grid: grid, LeftPart: p, RightPart: q, StorageNodes: ns, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		StorageNodes: ns, ComputeNodes: nj, CacheBytes: cacheBytes,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func req() engine.Request {
	return engine.Request{
		LeftTable: "T1", RightTable: "T2", JoinAttrs: []string{"x", "y", "z"},
	}
}

func TestName(t *testing.T) {
	e := New()
	if e.Name() != "ij" || e.String() != "IndexedJoin" {
		t.Errorf("identity: %q %q", e.Name(), e.String())
	}
}

func TestHashTableBuiltOncePerLeftSubTable(t *testing.T) {
	// a=4 lefts per component, b=1 right: every left participates in one
	// edge, so builds must equal T exactly (one per left sub-table), and
	// the probe count equals n_e·c_S.
	grid := partition.D(16, 16, 4)
	p := partition.D(4, 8, 4)  // 8 left chunks... (4 per component over q)
	q := partition.D(8, 16, 4) // 4 right chunks
	cl := makeCluster(t, grid, p, q, 2, 2, 32<<20)
	res, err := New().Run(cl, req())
	if err != nil {
		t.Fatal(err)
	}
	T := grid.Cells()
	if res.Join.TuplesBuilt != T {
		t.Errorf("builds = %d, want T = %d", res.Join.TuplesBuilt, T)
	}
	ne := partition.NumEdges(grid, p, q)
	cs := q.Cells()
	if res.Join.TuplesProbed != ne*cs {
		t.Errorf("probes = %d, want n_e·c_S = %d", res.Join.TuplesProbed, ne*cs)
	}
}

func TestMemoryAssumptionNoEvictions(t *testing.T) {
	// Cache sized exactly to the paper's bound 2·c_R·RS_R + b·c_S·RS_S
	// must produce zero evictions and exactly one fetch per sub-table.
	grid := partition.D(16, 16, 8)
	p := partition.D(4, 4, 8) // left nested in right: a=4, b=1
	q := partition.D(8, 8, 8)
	cR, cS := p.Cells(), q.Cells()
	b := partition.RightPerComponent(p, q)
	cacheBytes := CacheBytesFor(cR, 16, b, cS, 16)
	cl := makeCluster(t, grid, p, q, 2, 2, cacheBytes)
	res, err := New().Run(cl, req())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's guarantee is that no sub-table is evicted *while still
	// required*; the observable consequence is that every sub-table is
	// fetched exactly once: misses = total sub-tables.
	subTables := grid.Cells()/cR + grid.Cells()/cS
	if res.Cache.Misses != subTables {
		t.Errorf("misses = %d, want %d (one fetch per sub-table)", res.Cache.Misses, subTables)
	}
	wantBytes := grid.Cells() * 32
	if res.Traffic.NetBytesToCompute != wantBytes {
		t.Errorf("net bytes = %d, want %d", res.Traffic.NetBytesToCompute, wantBytes)
	}
}

func TestComponentsBalancedAcrossJoiners(t *testing.T) {
	// 32 identical components over 4 joiners: per-joiner probe work must
	// be exactly equal (the paper's "same amount of work" guarantee).
	grid := partition.D(16, 16, 8)
	q := partition.D(4, 4, 4)
	cl := makeCluster(t, grid, q, q, 2, 4, 32<<20)
	res, err := New().Run(cl, req())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != grid.Cells() {
		t.Fatalf("tuples = %d", res.Tuples)
	}
	// With equal components, per-joiner share of fetches is equal:
	// misses must be identical on every node. (Aggregate check: total
	// misses divisible by nj.)
	if res.Cache.Misses%4 != 0 {
		t.Errorf("misses %d not evenly divisible across 4 joiners", res.Cache.Misses)
	}
}

func TestCollectProducesAllJoinerOutputs(t *testing.T) {
	grid := partition.D(8, 8, 4)
	q := partition.D(4, 4, 4)
	cl := makeCluster(t, grid, q, q, 2, 3, 32<<20)
	r := req()
	r.Collect = true
	res, err := New().Run(cl, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Collected) != 3 {
		t.Fatalf("collected %d outputs", len(res.Collected))
	}
	total := 0
	for _, st := range res.Collected {
		total += st.NumRows()
	}
	if int64(total) != grid.Cells() {
		t.Errorf("collected rows = %d, want %d", total, grid.Cells())
	}
}

func TestMoreJoinersThanComponents(t *testing.T) {
	// 4 components, 8 joiners: the idle joiners must not break anything.
	grid := partition.D(8, 8, 4)
	q := partition.D(4, 4, 4)
	cl := makeCluster(t, grid, q, q, 1, 8, 32<<20)
	res, err := New().Run(cl, req())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != grid.Cells() {
		t.Errorf("tuples = %d", res.Tuples)
	}
}

func TestCacheBytesFor(t *testing.T) {
	// 2·c_R·RS_R + b·c_S·RS_S.
	if got := CacheBytesFor(100, 16, 3, 50, 8); got != 2*100*16+3*50*8 {
		t.Errorf("CacheBytesFor = %d", got)
	}
}

func TestWorkFactorMultipliesCharges(t *testing.T) {
	grid := partition.D(8, 8, 4)
	q := partition.D(4, 4, 4)
	cl := makeCluster(t, grid, q, q, 1, 2, 32<<20)
	r := req()
	r.WorkFactor = 5
	res, err := New().Run(cl, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Join.TuplesBuilt != 5*grid.Cells() {
		t.Errorf("builds = %d, want %d", res.Join.TuplesBuilt, 5*grid.Cells())
	}
	if res.Tuples != grid.Cells() {
		t.Errorf("result changed under work factor: %d", res.Tuples)
	}
}

func TestModeledCPUChargedPerJoiner(t *testing.T) {
	// With a per-op CPU cost and 2 joiners, wall time must reflect the
	// per-joiner division, not the total: ops/joiner × cost.
	grid := partition.D(8, 8, 8)
	q := partition.D(4, 4, 4)
	ds, err := oilres.Generate(oilres.Config{
		Grid: grid, LeftPart: q, RightPart: q, StorageNodes: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	const perOp = 50e-6
	cl, err := cluster.New(cluster.Config{
		StorageNodes: 1, ComputeNodes: 4, CacheBytes: 32 << 20,
		CPUSecPerOp: perOp,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Run(cl, req())
	if err != nil {
		t.Fatal(err)
	}
	// Total ops = 2T (build + probe); per joiner = 2T/4.
	wantSec := float64(2*grid.Cells()) / 4 * perOp
	got := res.Elapsed.Seconds()
	if got < wantSec*0.9 || got > wantSec*1.6 {
		t.Errorf("elapsed %.3fs, want ≈ %.3fs (per-joiner CPU division)", got, wantSec)
	}
}

var _ = tuple.ID{} // keep import for potential extension

func TestOPASMatchesComponentAtBound(t *testing.T) {
	// With the memory assumption satisfied, the component schedule is
	// fetch-optimal; OPAS must match it (one fetch per sub-table).
	grid := partition.D(16, 16, 8)
	p := partition.D(4, 4, 8)
	q := partition.D(8, 8, 8)
	b := partition.RightPerComponent(p, q)
	cacheBytes := CacheBytesFor(p.Cells(), 16, b, q.Cells(), 16)
	cl := makeCluster(t, grid, p, q, 2, 2, cacheBytes)
	e := &Engine{Schedule: ScheduleOPAS}
	res, err := e.Run(cl, req())
	if err != nil {
		t.Fatal(err)
	}
	subTables := grid.Cells()/p.Cells() + grid.Cells()/q.Cells()
	if res.Cache.Misses != subTables {
		t.Errorf("OPAS misses = %d, want %d", res.Cache.Misses, subTables)
	}
	if res.Tuples != grid.Cells() {
		t.Errorf("tuples = %d", res.Tuples)
	}
}

func TestOPASBeatsComponentBelowBound(t *testing.T) {
	// Overlapping partitions (a=4 lefts, b=2 rights per component) with a
	// cache at half the memory bound: the component-lex order re-fetches,
	// OPAS reorders to reduce re-transfer volume.
	grid := partition.D(16, 16, 8)
	p := partition.D(2, 2, 4) // split in x, y
	q := partition.D(4, 4, 2) // split in z: overlaps, never nests
	need := CacheBytesFor(p.Cells(), 16, 2, q.Cells(), 16)
	cl := makeCluster(t, grid, p, q, 2, 2, need/2)

	runBytes := func(e *Engine) int64 {
		res, err := e.Run(cl, req())
		if err != nil {
			t.Fatal(err)
		}
		if res.Tuples != grid.Cells() {
			t.Fatalf("tuples = %d", res.Tuples)
		}
		return res.Traffic.NetBytesToCompute
	}
	component := runBytes(New())
	opas := runBytes(&Engine{Schedule: ScheduleOPAS})
	if opas > component {
		t.Errorf("OPAS moved %d bytes, component schedule %d — OPAS should not be worse", opas, component)
	}
	minBytes := grid.Cells() * 32
	t.Logf("minimum %d, OPAS %d, component %d", minBytes, opas, component)
}

func TestScheduleStrings(t *testing.T) {
	cases := map[Schedule]string{
		ScheduleComponent: "component",
		ScheduleGlobalLex: "global-lex",
		ScheduleRandom:    "random",
		ScheduleOPAS:      "opas",
		Schedule(99):      "Schedule(99)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
