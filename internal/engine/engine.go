// Package engine defines the common contract of the Query Execution
// Systems (QES): the request describing a join-view scan and the result
// with its timing, tuple counts and accounting. The two implementations —
// the page-level Indexed Join (internal/ij) and Grace Hash
// (internal/gh) — both execute queries of the form
//
//	SELECT * FROM V WHERE <ranges>,   V = Left ⊕<attrs> Right
//
// against an emulated cluster.
package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"sciview/internal/cache"
	"sciview/internal/cluster"
	"sciview/internal/metadata"
	"sciview/internal/trace"
	"sciview/internal/tuple"
)

// Request describes one join-view execution.
type Request struct {
	// LeftTable and RightTable name the joined virtual tables; LeftTable
	// is the build (inner) side.
	LeftTable  string
	RightTable string
	// JoinAttrs are the equi-join attributes (e.g. x, y, z).
	JoinAttrs []string
	// Filter is an optional range selection applied to the view.
	Filter metadata.Range
	// Project lists the view output attributes the caller needs (nil =
	// all). Engines push the projection down to the BDS — join attributes
	// are always retained — so unneeded columns never travel.
	Project []string
	// WorkFactor repeats hash build/probe operations to emulate a slower
	// CPU (>=1; the paper's Figure 8 technique).
	WorkFactor int
	// Collect retains the produced result sub-tables (for correctness
	// checks). Experiments leave it false and only count tuples, since the
	// paper's queries enumerate the view without storing it.
	Collect bool
	// Trace, when non-nil, records per-operation execution events
	// (fetches, builds, probes, spills) for offline analysis.
	Trace *trace.Recorder
	// Shared runs the query without exclusive ownership of the cluster:
	// no state reset at start, shared sub-table caches, and concurrent
	// execution alongside other shared queries. The concurrent query
	// service sets this; Result.Traffic and Result.Cache then report
	// cumulative cluster counters rather than this query's share.
	Shared bool
	// Prefetch is the IJ joiner's lookahead depth: while edge i builds and
	// probes, the fetches for the sub-tables of edges i+1..i+Prefetch are
	// issued in the background (through the singleflight cache), hiding
	// network latency behind CPU work. 0 disables prefetching (the strict
	// fetch→build→probe loop); DefaultPrefetch is what the CLI flags use.
	// Prefetching changes overlap only — results, cost-model counters and
	// per-fetch miss accounting are identical either way.
	Prefetch int
	// Parallelism bounds the hash-join kernel workers per build/probe:
	// 0 = all CPUs, 1 = serial, n = at most n goroutines. Small sub-tables
	// run serially regardless. Output is byte-identical for every setting.
	Parallelism int
	// Sink, when non-nil, streams result batches out of the join as they
	// are produced instead of materializing them: IJ emits after each edge
	// probe, GH after each bucket-pair join. Batches are grouped by "part"
	// (the IJ slot or GH group index) so a consumer can re-establish the
	// deterministic slot/group order. When a sink is set, Collect is
	// ignored and Result.Collected stays nil. Emitted sub-tables are owned
	// by the sink; the engine allocates a fresh output table after each
	// emit.
	Sink Sink
	// Progress, when non-nil, is updated with schedule-unit counts (IJ
	// edges / GH bucket pairs) as the run proceeds. The counters survive
	// an error return, so an early-terminated query can report how much of
	// the join it actually executed.
	Progress *Progress
	// AsOf pins chunk resolution to a catalog version for snapshot-isolated
	// reads: both sides see exactly the chunks committed at or before AsOf,
	// so appends that land mid-query never perturb the result. 0 means
	// "current" (unpinned). The query service stamps this at admission.
	AsOf int64
	// LeftVersions and RightVersions narrow each side to a window of append
	// versions (delta-join view maintenance resolves "only the chunks of
	// batch v" this way). A zero window is unconstrained. When set, the
	// window's Until — if zero — inherits AsOf, so deltas compose with
	// snapshot pins.
	LeftVersions  metadata.VersionWindow
	RightVersions metadata.VersionWindow
	// MemoryBudget bounds the engine's in-memory join state in bytes
	// (0 = unbounded). Each per-node QES divides its share of the budget
	// between the two sub-tables of a pair; a build side over its share
	// is partitioned to the node's scratch disk and joined leaf by leaf,
	// byte-identical to the in-memory join. The plan layer stamps this
	// from the query's admission budget share.
	MemoryBudget int64
}

// LeftWindow returns the effective version window for the left side:
// LeftVersions with an unset Until defaulting to AsOf.
func (r Request) LeftWindow() metadata.VersionWindow {
	return effectiveWindow(r.LeftVersions, r.AsOf)
}

// RightWindow returns the effective version window for the right side.
func (r Request) RightWindow() metadata.VersionWindow {
	return effectiveWindow(r.RightVersions, r.AsOf)
}

func effectiveWindow(w metadata.VersionWindow, asOf int64) metadata.VersionWindow {
	if w.Until == 0 {
		w.Until = asOf
	}
	return w
}

// Sink consumes streamed join output. Engines call Emit from the
// goroutine that owns the part (one goroutine per part at any time), Done
// exactly once when a part's final attempt has produced all its batches,
// and Discard when a failed attempt's output must be thrown away before a
// replay (fault-tolerant re-execution). Emit may block to bound buffered
// memory; it returns an error once the consumer has gone away, which the
// engine surfaces as a failed run.
type Sink interface {
	Emit(part int, batch *tuple.SubTable) error
	Done(part int)
	Discard(part int)
}

// Progress counts join schedule units: edges for IJ, top-level bucket
// pairs for GH. Total is set once the schedule is known; Joined is
// incremented as units complete. Both are safe for concurrent readers
// while a run is in flight.
type Progress struct {
	Joined atomic.Int64
	Total  atomic.Int64
}

// Observed is the run's measured resource costs, the feedback the online
// cost-model calibration layer consumes (costmodel.Estimator): how many
// bytes actually moved storage→compute and how long the wire was busy,
// how many hash build/probe operations ran and their wall-clock cost
// (including the emulated CPU charge), and GH's scratch spill traffic.
// Seconds are summed per-stream busy time: with n concurrent fetchers a
// run accumulates n× wall time, so Bytes/Seconds is the *per-stream*
// effective rate, which is what the models' aggregate terms scale up by
// node count. All fields are zero for runs that skipped the stage.
type Observed struct {
	// FetchBytes/FetchSeconds cover storage→compute transfers: decoded
	// payload bytes against wire-busy seconds (disk read + transport), so
	// compression shows up as higher effective bandwidth.
	FetchBytes   int64
	FetchSeconds float64
	// BuildTuples/ProbeTuples count hash operations (rows × WorkFactor);
	// Seconds span the kernel plus the modeled-CPU charge, so the derived
	// α constants track the emulated processor, not just the host.
	BuildTuples  int64
	BuildSeconds float64
	ProbeTuples  int64
	ProbeSeconds float64
	// Spill{Write,Read} cover GH's scratch bucket traffic per joiner.
	SpillWriteBytes   int64
	SpillWriteSeconds float64
	SpillReadBytes    int64
	SpillReadSeconds  float64
}

// Merge accumulates another run's observations (regret replays fold the
// forced runs' measurements into one feedback record).
func (o *Observed) Merge(b Observed) {
	o.FetchBytes += b.FetchBytes
	o.FetchSeconds += b.FetchSeconds
	o.BuildTuples += b.BuildTuples
	o.BuildSeconds += b.BuildSeconds
	o.ProbeTuples += b.ProbeTuples
	o.ProbeSeconds += b.ProbeSeconds
	o.SpillWriteBytes += b.SpillWriteBytes
	o.SpillWriteSeconds += b.SpillWriteSeconds
	o.SpillReadBytes += b.SpillReadBytes
	o.SpillReadSeconds += b.SpillReadSeconds
}

// ObsCollector accumulates Observed fields from the engines' concurrent
// workers (atomically, nanosecond-granular). A nil collector is a valid
// no-op, so call sites stay unconditional.
type ObsCollector struct {
	fetchBytes, fetchNanos           atomic.Int64
	buildTuples, buildNanos          atomic.Int64
	probeTuples, probeNanos          atomic.Int64
	spillWriteBytes, spillWriteNanos atomic.Int64
	spillReadBytes, spillReadNanos   atomic.Int64
}

// Fetch records one storage→compute transfer.
func (o *ObsCollector) Fetch(bytes int64, d time.Duration) {
	if o == nil {
		return
	}
	o.fetchBytes.Add(bytes)
	o.fetchNanos.Add(int64(d))
}

// Build records one hash-table build of ops operations.
func (o *ObsCollector) Build(ops int64, d time.Duration) {
	if o == nil {
		return
	}
	o.buildTuples.Add(ops)
	o.buildNanos.Add(int64(d))
}

// Probe records one probe pass of ops operations.
func (o *ObsCollector) Probe(ops int64, d time.Duration) {
	if o == nil {
		return
	}
	o.probeTuples.Add(ops)
	o.probeNanos.Add(int64(d))
}

// SpillWrite records one scratch bucket write.
func (o *ObsCollector) SpillWrite(bytes int64, d time.Duration) {
	if o == nil {
		return
	}
	o.spillWriteBytes.Add(bytes)
	o.spillWriteNanos.Add(int64(d))
}

// SpillRead records one scratch bucket read.
func (o *ObsCollector) SpillRead(bytes int64, d time.Duration) {
	if o == nil {
		return
	}
	o.spillReadBytes.Add(bytes)
	o.spillReadNanos.Add(int64(d))
}

// Snapshot converts the accumulated counters to an Observed record.
func (o *ObsCollector) Snapshot() Observed {
	if o == nil {
		return Observed{}
	}
	const ns = float64(time.Second)
	return Observed{
		FetchBytes:        o.fetchBytes.Load(),
		FetchSeconds:      float64(o.fetchNanos.Load()) / ns,
		BuildTuples:       o.buildTuples.Load(),
		BuildSeconds:      float64(o.buildNanos.Load()) / ns,
		ProbeTuples:       o.probeTuples.Load(),
		ProbeSeconds:      float64(o.probeNanos.Load()) / ns,
		SpillWriteBytes:   o.spillWriteBytes.Load(),
		SpillWriteSeconds: float64(o.spillWriteNanos.Load()) / ns,
		SpillReadBytes:    o.spillReadBytes.Load(),
		SpillReadSeconds:  float64(o.spillReadNanos.Load()) / ns,
	}
}

// OpStat is one operator's accounting in a streaming plan: rows/batches/
// bytes that crossed its Next boundary and the wall-clock time spent
// inside it. PeakBytes is operator-specific resident memory (e.g. the
// join reorder buffer's high-water mark, or a sort's accumulated input).
type OpStat struct {
	Op        string
	Rows      int64
	Batches   int64
	Bytes     int64
	PeakBytes int64
	Busy      time.Duration
	// SpillBytes/SpillReadBytes are the scratch bytes this operator wrote
	// and read back while running out-of-core; SpillParts counts the
	// scratch files (sort runs, aggregation partitions, join build
	// partitions) it created. All zero for in-memory execution.
	SpillBytes     int64
	SpillReadBytes int64
	SpillParts     int64
}

// DefaultPrefetch is the lookahead depth the command-line tools use when
// the -prefetch flag is not given: deep enough to overlap the next edge's
// two fetches with the current edge's compute, shallow enough to stay
// within the paper's cache memory assumption.
const DefaultPrefetch = 2

// Validate checks the request.
func (r Request) Validate() error {
	if r.LeftTable == "" || r.RightTable == "" {
		return fmt.Errorf("engine: both table names are required")
	}
	if len(r.JoinAttrs) == 0 {
		return fmt.Errorf("engine: no join attributes")
	}
	if err := r.Filter.Validate(); err != nil {
		return err
	}
	return nil
}

// JoinCounts is a plain snapshot of hashjoin.Stats.
type JoinCounts struct {
	TuplesBuilt  int64
	TuplesProbed int64
	Matches      int64
}

// Result reports one execution.
type Result struct {
	Engine string
	// Tuples is the number of result tuples produced.
	Tuples int64
	// Elapsed is the wall-clock execution time (the quantity the paper's
	// figures plot).
	Elapsed time.Duration
	// Join aggregates hash build/probe counts across all QES instances.
	Join JoinCounts
	// Cache aggregates sub-table cache statistics across compute nodes
	// (IJ only; zero for GH).
	Cache cache.Stats
	// Traffic is the cluster byte accounting for the run.
	Traffic cluster.Traffic
	// Health is the cluster's fault-tolerance accounting (retries,
	// failovers, breaker trips, recoveries). For shared runs the counters
	// are cumulative across the queries sharing the cluster.
	Health cluster.HealthStats
	// Collected holds per-joiner result sub-tables when Request.Collect.
	Collected []*tuple.SubTable
	// Phases records coarse phase durations (engine-specific keys, e.g.
	// "partition" and "bucketjoin" for GH).
	Phases map[string]time.Duration
	// UnitsJoined/UnitsTotal count join schedule units (IJ edges, GH
	// top-level bucket pairs) executed vs scheduled. A full run has
	// UnitsJoined == UnitsTotal; an early-terminated streaming query
	// reports the fraction it actually joined.
	UnitsJoined int64
	UnitsTotal  int64
	// Operators holds per-operator statistics when the query ran through
	// a streaming plan (internal/plan); nil for direct engine runs.
	Operators []OpStat
	// Observed is the run's measured resource costs — the feedback signal
	// the planner's online calibration layer folds into its constants.
	Observed Observed
}

// EffectiveProject returns the pushdown list the engines apply to each
// base table: the requested attributes plus the join keys (which the
// engines need for hashing). Nil when the request selects everything.
func (r Request) EffectiveProject() []string {
	if r.Project == nil {
		return nil
	}
	seen := make(map[string]bool, len(r.Project)+len(r.JoinAttrs))
	out := make([]string, 0, len(r.Project)+len(r.JoinAttrs))
	for _, lists := range [][]string{r.Project, r.JoinAttrs} {
		for _, a := range lists {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// ProjectedSchema returns schema restricted to the projected attributes
// (in schema order); project == nil keeps everything.
func ProjectedSchema(schema tuple.Schema, project []string) tuple.Schema {
	if project == nil {
		return schema
	}
	want := make(map[string]bool, len(project))
	for _, p := range project {
		want[p] = true
	}
	var attrs []tuple.Attr
	for _, a := range schema.Attrs {
		if want[a.Name] {
			attrs = append(attrs, a)
		}
	}
	return tuple.Schema{Attrs: attrs}
}

// Engine executes join-view requests on a cluster.
type Engine interface {
	// Name returns the engine identifier ("ij" or "gh").
	Name() string
	// Run executes the request. Non-shared runs reset cluster accounting
	// at start so Result.Traffic covers exactly this run.
	Run(cl *cluster.Cluster, req Request) (*Result, error)
	// RunContext is Run observing ctx: engines check it between work
	// items (edges, chunks, buckets) and propagate it into sub-table
	// fetches, so a cancelled or deadline-expired query returns ctx.Err()
	// mid-join instead of running to completion.
	RunContext(ctx context.Context, cl *cluster.Cluster, req Request) (*Result, error)
}
