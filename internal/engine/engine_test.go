package engine_test

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sciview/internal/cluster"
	"sciview/internal/engine"
	"sciview/internal/gh"
	"sciview/internal/ij"
	"sciview/internal/metadata"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/trace"
	"sciview/internal/tuple"
)

func genCluster(t *testing.T, grid, p, q partition.Dims, ns, nj int) (*oilres.Dataset, *cluster.Cluster) {
	t.Helper()
	ds, err := oilres.Generate(oilres.Config{
		Grid: grid, LeftPart: p, RightPart: q,
		StorageNodes: ns, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		StorageNodes: ns, ComputeNodes: nj,
		CacheBytes: 64 << 20, // generous: the paper's memory assumption holds
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	return ds, cl
}

func fullJoinReq(collect bool) engine.Request {
	return engine.Request{
		LeftTable: "T1", RightTable: "T2",
		JoinAttrs: []string{"x", "y", "z"},
		Collect:   collect,
	}
}

func engines() []engine.Engine {
	return []engine.Engine{ij.New(), gh.New()}
}

func TestFullJoinTupleCount(t *testing.T) {
	grid := partition.D(16, 16, 8)
	_, cl := genCluster(t, grid, partition.D(8, 8, 8), partition.D(4, 4, 8), 3, 2)
	want := grid.Cells()
	for _, e := range engines() {
		res, err := e.Run(cl, fullJoinReq(false))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if res.Tuples != want {
			t.Errorf("%s: tuples = %d, want %d", e.Name(), res.Tuples, want)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%s: non-positive elapsed", e.Name())
		}
	}
}

// collectRows flattens and sorts the collected output for comparison.
func collectRows(t *testing.T, res *engine.Result) [][]float32 {
	t.Helper()
	var rows [][]float32
	for _, st := range res.Collected {
		for r := 0; r < st.NumRows(); r++ {
			rows = append(rows, st.Row(r, nil))
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		for c := range rows[i] {
			if rows[i][c] != rows[j][c] {
				return rows[i][c] < rows[j][c]
			}
		}
		return false
	})
	return rows
}

func TestEnginesProduceIdenticalResults(t *testing.T) {
	grid := partition.D(8, 8, 4)
	_, cl := genCluster(t, grid, partition.D(4, 4, 4), partition.D(2, 4, 4), 2, 3)
	var all [][][]float32
	for _, e := range engines() {
		res, err := e.Run(cl, fullJoinReq(true))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		all = append(all, collectRows(t, res))
	}
	if len(all[0]) != len(all[1]) || len(all[0]) != int(grid.Cells()) {
		t.Fatalf("row counts: ij=%d gh=%d want %d", len(all[0]), len(all[1]), grid.Cells())
	}
	for i := range all[0] {
		for c := range all[0][i] {
			if all[0][i][c] != all[1][i][c] {
				t.Fatalf("row %d differs: ij=%v gh=%v", i, all[0][i], all[1][i])
			}
		}
	}
	// Sanity: joined record carries x,y,z,oilp,wp.
	if len(all[0][0]) != 5 {
		t.Errorf("result width = %d, want 5", len(all[0][0]))
	}
}

func TestRangeFilteredJoin(t *testing.T) {
	grid := partition.D(16, 8, 4)
	_, cl := genCluster(t, grid, partition.D(4, 4, 4), partition.D(4, 4, 4), 2, 2)
	req := fullJoinReq(false)
	// x in [0,7], y in [2,5]: 8 × 4 × 4 cells.
	req.Filter = metadata.Range{
		Attrs: []string{"x", "y"},
		Lo:    []float64{0, 2},
		Hi:    []float64{7, 5},
	}
	want := int64(8 * 4 * 4)
	for _, e := range engines() {
		res, err := e.Run(cl, req)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if res.Tuples != want {
			t.Errorf("%s: tuples = %d, want %d", e.Name(), res.Tuples, want)
		}
	}
}

func TestMeasureFilteredJoin(t *testing.T) {
	// A filter on a measure attribute of the left table restricts which
	// left records join; both engines must agree.
	_, cl := genCluster(t, partition.D(8, 8, 4), partition.D(4, 4, 4), partition.D(4, 4, 4), 2, 2)
	req := fullJoinReq(false)
	req.Filter = metadata.Range{
		Attrs: []string{"oilp"},
		Lo:    []float64{0},
		Hi:    []float64{0.25},
	}
	var counts []int64
	for _, e := range engines() {
		res, err := e.Run(cl, req)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		counts = append(counts, res.Tuples)
	}
	if counts[0] != counts[1] {
		t.Errorf("ij=%d gh=%d", counts[0], counts[1])
	}
	if counts[0] <= 0 || counts[0] >= 8*8*4 {
		t.Errorf("implausible filtered count %d", counts[0])
	}
}

func TestIJTrafficAndCache(t *testing.T) {
	grid := partition.D(16, 16, 8)
	ds, cl := genCluster(t, grid, partition.D(8, 8, 8), partition.D(4, 4, 8), 3, 2)
	res, err := ij.New().Run(cl, fullJoinReq(false))
	if err != nil {
		t.Fatal(err)
	}
	// Under the memory assumption no sub-table is fetched twice:
	// network volume = T·(RS_R + RS_S).
	want := ds.Tuples() * int64(4*tuple.AttrSize+4*tuple.AttrSize)
	if res.Traffic.NetBytesToCompute != want {
		t.Errorf("net bytes = %d, want %d", res.Traffic.NetBytesToCompute, want)
	}
	if res.Traffic.StorageBytesRead != want {
		t.Errorf("storage read = %d, want %d", res.Traffic.StorageBytesRead, want)
	}
	// IJ never spills.
	if res.Traffic.ScratchBytesWritten != 0 || res.Traffic.ScratchBytesRead != 0 {
		t.Errorf("IJ spilled: %+v", res.Traffic)
	}
	if res.Cache.Evictions != 0 {
		t.Errorf("evictions = %d under memory assumption", res.Cache.Evictions)
	}
	// Each right sub-table is connected to 2 left sub-tables?? No: with
	// p=(8,8,8), q=(4,4,8) each right fits in one left: degree 1, and each
	// edge needs its right once. Misses = unique fetches; hits = reuses of
	// left sub-tables across edges (8 rights per left - sorted order).
	if res.Cache.Hits == 0 {
		t.Error("expected cache hits from left sub-table reuse")
	}
	// Lookup accounting: probed tuples = sum over edges of right rows.
	ne := partition.NumEdges(grid, partition.D(8, 8, 8), partition.D(4, 4, 8))
	cs := partition.D(4, 4, 8).Cells()
	if res.Join.TuplesProbed != ne*cs {
		t.Errorf("probed = %d, want n_e·c_S = %d", res.Join.TuplesProbed, ne*cs)
	}
	if res.Join.TuplesBuilt != ds.Tuples() {
		t.Errorf("built = %d, want T = %d", res.Join.TuplesBuilt, ds.Tuples())
	}
}

func TestGHTrafficSpillsBothTables(t *testing.T) {
	ds, cl := genCluster(t, partition.D(16, 16, 8), partition.D(8, 8, 8), partition.D(4, 4, 8), 3, 2)
	res, err := gh.New().Run(cl, fullJoinReq(false))
	if err != nil {
		t.Fatal(err)
	}
	bytes := ds.Tuples() * int64(4*tuple.AttrSize+4*tuple.AttrSize)
	if res.Traffic.ScratchBytesWritten != bytes {
		t.Errorf("spill written = %d, want %d", res.Traffic.ScratchBytesWritten, bytes)
	}
	if res.Traffic.ScratchBytesRead != bytes {
		t.Errorf("spill read = %d, want %d", res.Traffic.ScratchBytesRead, bytes)
	}
	if res.Traffic.NetBytesToCompute != bytes {
		t.Errorf("net = %d, want %d", res.Traffic.NetBytesToCompute, bytes)
	}
	// GH's CPU cost is one build and one probe per tuple.
	if res.Join.TuplesBuilt != ds.Tuples() || res.Join.TuplesProbed != ds.Tuples() {
		t.Errorf("built=%d probed=%d, want T=%d", res.Join.TuplesBuilt, res.Join.TuplesProbed, ds.Tuples())
	}
	if res.Phases["partition"] <= 0 || res.Phases["bucketjoin"] <= 0 {
		t.Error("phase durations missing")
	}
}

func TestGHInsensitiveToPartitioning(t *testing.T) {
	// Same grid, wildly different partitionings: GH tuple counts and
	// spill volumes identical.
	grid := partition.D(16, 16, 4)
	var spills []int64
	for _, parts := range [][2]partition.Dims{
		{partition.D(8, 8, 4), partition.D(8, 8, 4)},
		{partition.D(16, 2, 4), partition.D(2, 16, 4)},
	} {
		_, cl := genCluster(t, grid, parts[0], parts[1], 2, 2)
		res, err := gh.New().Run(cl, fullJoinReq(false))
		if err != nil {
			t.Fatal(err)
		}
		if res.Tuples != grid.Cells() {
			t.Fatalf("tuples = %d", res.Tuples)
		}
		spills = append(spills, res.Traffic.ScratchBytesWritten)
	}
	if spills[0] != spills[1] {
		t.Errorf("spill volumes differ: %v", spills)
	}
}

func TestWorkFactorSlowsBothEngines(t *testing.T) {
	_, cl := genCluster(t, partition.D(8, 8, 4), partition.D(4, 4, 4), partition.D(4, 4, 4), 2, 2)
	for _, e := range engines() {
		req := fullJoinReq(false)
		res1, err := e.Run(cl, req)
		if err != nil {
			t.Fatal(err)
		}
		req.WorkFactor = 3
		res3, err := e.Run(cl, req)
		if err != nil {
			t.Fatal(err)
		}
		if res3.Join.TuplesBuilt != 3*res1.Join.TuplesBuilt {
			t.Errorf("%s: built %d vs %d", e.Name(), res3.Join.TuplesBuilt, res1.Join.TuplesBuilt)
		}
		if res3.Tuples != res1.Tuples {
			t.Errorf("%s: result changed under work factor", e.Name())
		}
	}
}

func TestRequestValidation(t *testing.T) {
	_, cl := genCluster(t, partition.D(4, 4, 2), partition.D(2, 2, 2), partition.D(2, 2, 2), 1, 1)
	for _, e := range engines() {
		if _, err := e.Run(cl, engine.Request{RightTable: "T2", JoinAttrs: []string{"x"}}); err == nil {
			t.Errorf("%s: missing left table accepted", e.Name())
		}
		if _, err := e.Run(cl, engine.Request{LeftTable: "T1", RightTable: "T2"}); err == nil {
			t.Errorf("%s: missing join attrs accepted", e.Name())
		}
		if _, err := e.Run(cl, engine.Request{LeftTable: "nope", RightTable: "T2", JoinAttrs: []string{"x"}}); err == nil {
			t.Errorf("%s: unknown table accepted", e.Name())
		}
		bad := fullJoinReq(false)
		bad.Filter = metadata.Range{Attrs: []string{"x"}, Lo: []float64{5}, Hi: []float64{1}}
		if _, err := e.Run(cl, bad); err == nil {
			t.Errorf("%s: inverted filter accepted", e.Name())
		}
	}
}

func TestSmallCacheStillCorrect(t *testing.T) {
	// Cache far below the memory assumption: IJ must refetch (extension
	// behaviour) but stay correct.
	ds, err := oilres.Generate(oilres.Config{
		Grid: partition.D(8, 8, 4), LeftPart: partition.D(8, 8, 4), RightPart: partition.D(2, 2, 4),
		StorageNodes: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		StorageNodes: 2, ComputeNodes: 2,
		CacheBytes: 2048, // tiny
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ij.New().Run(cl, fullJoinReq(false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != ds.Tuples() {
		t.Errorf("tuples = %d, want %d", res.Tuples, ds.Tuples())
	}
	if res.Cache.Evictions == 0 {
		t.Error("expected evictions with a tiny cache")
	}
}

func TestGHBucketTuning(t *testing.T) {
	_, cl := genCluster(t, partition.D(8, 8, 4), partition.D(4, 4, 4), partition.D(4, 4, 4), 2, 2)
	for _, buckets := range []int{1, 2, 7, 32} {
		e := &gh.Engine{Buckets: buckets, BatchRows: 100, FlushRows: 64}
		res, err := e.Run(cl, fullJoinReq(false))
		if err != nil {
			t.Fatalf("buckets=%d: %v", buckets, err)
		}
		if res.Tuples != 8*8*4 {
			t.Errorf("buckets=%d: tuples = %d", buckets, res.Tuples)
		}
	}
}

func TestPropEnginesAgreeOnRandomConfigs(t *testing.T) {
	// Random grids, partition pairs and cluster shapes: both engines must
	// produce exactly T tuples (full join, selectivity 1) and identical
	// counts under range filters.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pow := func(limit int) int {
			v := 1
			for v*2 <= limit && r.Intn(2) == 0 {
				v *= 2
			}
			return v
		}
		grid := partition.D(4<<r.Intn(2), 4<<r.Intn(2), 2<<r.Intn(2))
		p := partition.D(pow(grid.X), pow(grid.Y), pow(grid.Z))
		q := partition.D(pow(grid.X), pow(grid.Y), pow(grid.Z))
		ns := 1 + r.Intn(3)
		nj := 1 + r.Intn(4)
		ds, err := oilres.Generate(oilres.Config{
			Grid: grid, LeftPart: p, RightPart: q, StorageNodes: ns, Seed: seed,
		})
		if err != nil {
			t.Log(err)
			return false
		}
		cl, err := cluster.New(cluster.Config{
			StorageNodes: ns, ComputeNodes: nj, CacheBytes: 32 << 20,
		}, ds.Catalog, ds.Stores)
		if err != nil {
			t.Log(err)
			return false
		}
		req := fullJoinReq(false)
		// Random range filter on x half the time.
		if r.Intn(2) == 0 {
			hi := float64(r.Intn(grid.X))
			req.Filter = metadata.Range{Attrs: []string{"x"}, Lo: []float64{0}, Hi: []float64{hi}}
		}
		var counts []int64
		for _, e := range engines() {
			res, err := e.Run(cl, req)
			if err != nil {
				t.Logf("%s: %v", e.Name(), err)
				return false
			}
			counts = append(counts, res.Tuples)
		}
		if counts[0] != counts[1] {
			t.Logf("grid=%v p=%v q=%v ns=%d nj=%d: ij=%d gh=%d",
				grid, p, q, ns, nj, counts[0], counts[1])
			return false
		}
		if req.Filter.Empty() && counts[0] != grid.Cells() {
			t.Logf("full join produced %d of %d", counts[0], grid.Cells())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestProjectionPushdownReducesTraffic(t *testing.T) {
	// 8-attribute tables; the query needs join keys + one measure per
	// side: 5 of 8 columns from the left, 4 of 8 from the right.
	ds, err := oilres.Generate(oilres.Config{
		Grid: partition.D(16, 16, 8), LeftPart: partition.D(4, 4, 8), RightPart: partition.D(4, 4, 8),
		LeftMeasures:  []string{"oilp", "l1", "l2", "l3", "l4"},
		RightMeasures: []string{"wp", "r1", "r2", "r3", "r4"},
		StorageNodes:  2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		StorageNodes: 2, ComputeNodes: 2, CacheBytes: 64 << 20,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range engines() {
		full := fullJoinReq(false)
		resFull, err := e.Run(cl, full)
		if err != nil {
			t.Fatal(err)
		}
		proj := fullJoinReq(false)
		proj.Project = []string{"oilp", "wp"}
		resProj, err := e.Run(cl, proj)
		if err != nil {
			t.Fatal(err)
		}
		if resProj.Tuples != resFull.Tuples {
			t.Errorf("%s: projection changed tuple count: %d vs %d",
				e.Name(), resProj.Tuples, resFull.Tuples)
		}
		// Full records are 32 B each side; projected are (3+1)·4 = 16 B:
		// exactly half the traffic.
		if resProj.Traffic.NetBytesToCompute*2 != resFull.Traffic.NetBytesToCompute {
			t.Errorf("%s: projected traffic %d, full %d (want exactly half)",
				e.Name(), resProj.Traffic.NetBytesToCompute, resFull.Traffic.NetBytesToCompute)
		}
		if e.Name() == "gh" && resProj.Traffic.ScratchBytesWritten*2 != resFull.Traffic.ScratchBytesWritten {
			t.Errorf("gh: projected spill %d, full %d (want exactly half)",
				resProj.Traffic.ScratchBytesWritten, resFull.Traffic.ScratchBytesWritten)
		}
	}
}

func TestProjectionPushdownPreservesValues(t *testing.T) {
	_, cl := genCluster(t, partition.D(8, 8, 4), partition.D(4, 4, 4), partition.D(2, 4, 4), 2, 2)
	for _, e := range engines() {
		full := fullJoinReq(true)
		resFull, err := e.Run(cl, full)
		if err != nil {
			t.Fatal(err)
		}
		proj := fullJoinReq(true)
		proj.Project = []string{"x", "y", "z", "wp"}
		resProj, err := e.Run(cl, proj)
		if err != nil {
			t.Fatal(err)
		}
		// Projected output drops oilp: schema x,y,z,wp.
		fullRows := collectRows(t, resFull)
		projRows := collectRows(t, resProj)
		if len(projRows) != len(fullRows) {
			t.Fatalf("%s: row counts %d vs %d", e.Name(), len(projRows), len(fullRows))
		}
		if len(projRows[0]) != 4 {
			t.Fatalf("%s: projected width = %d, want 4", e.Name(), len(projRows[0]))
		}
		// Full schema is x,y,z,oilp,wp: compare (x,y,z,wp).
		for i := range fullRows {
			want := []float32{fullRows[i][0], fullRows[i][1], fullRows[i][2], fullRows[i][4]}
			for c := range want {
				if projRows[i][c] != want[c] {
					t.Fatalf("%s: row %d col %d: %v vs %v", e.Name(), i, c, projRows[i][c], want[c])
				}
			}
		}
	}
}

func TestTraceRecordsEngineActivity(t *testing.T) {
	ds, cl := genCluster(t, partition.D(8, 8, 4), partition.D(4, 4, 4), partition.D(4, 4, 4), 2, 2)
	for _, e := range engines() {
		rec := trace.New()
		req := fullJoinReq(false)
		req.Trace = rec
		if _, err := e.Run(cl, req); err != nil {
			t.Fatal(err)
		}
		sum := trace.Summarize(rec.Events())
		if sum.Events == 0 {
			t.Fatalf("%s: no events recorded", e.Name())
		}
		byKind := map[trace.Kind]trace.KindSummary{}
		for _, k := range sum.Kinds {
			byKind[k.Kind] = k
		}
		// Both engines fetch every sub-table once: 2 tables × 4 chunks,
		// and the fetch bytes equal the full transfer volume.
		fetch := byKind[trace.KindFetch]
		if fetch.Count != 8 {
			t.Errorf("%s: %d fetch events, want 8", e.Name(), fetch.Count)
		}
		wantBytes := ds.Tuples() * 32
		if fetch.Bytes != wantBytes {
			t.Errorf("%s: fetch bytes = %d, want %d", e.Name(), fetch.Bytes, wantBytes)
		}
		if byKind[trace.KindBuild].Count == 0 || byKind[trace.KindProbe].Count == 0 {
			t.Errorf("%s: missing build/probe events", e.Name())
		}
		if e.Name() == "gh" {
			if byKind[trace.KindSpill].Count == 0 || byKind[trace.KindBucketRead].Count == 0 ||
				byKind[trace.KindShip].Count == 0 {
				t.Errorf("gh: missing spill pipeline events: %+v", sum.Kinds)
			}
			// Spilled bytes equal bucket-read bytes equal total volume.
			if byKind[trace.KindSpill].Bytes != byKind[trace.KindBucketRead].Bytes {
				t.Errorf("gh: spill %d bytes but read %d", byKind[trace.KindSpill].Bytes,
					byKind[trace.KindBucketRead].Bytes)
			}
		}
		// Running without a recorder still works (nil-safety).
		req.Trace = nil
		if _, err := e.Run(cl, req); err != nil {
			t.Fatal(err)
		}
	}
}
