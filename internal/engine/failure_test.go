package engine_test

import (
	"strings"
	"testing"

	"sciview/internal/cluster"
	"sciview/internal/partition"
)

// Failure injection: storage-level faults must surface as errors from both
// engines — never panics, hangs, or silently wrong results.

func TestMissingObjectFailsBothEngines(t *testing.T) {
	ds, cl := genCluster(t, partition.D(8, 8, 4), partition.D(4, 4, 4), partition.D(4, 4, 4), 2, 2)
	// Delete one data object out from under the catalog.
	names, err := ds.Stores[0].List()
	if err != nil || len(names) == 0 {
		t.Fatalf("listing store: %v", err)
	}
	if err := ds.Stores[0].Delete(names[0]); err != nil {
		t.Fatal(err)
	}
	for _, e := range engines() {
		_, err := e.Run(cl, fullJoinReq(false))
		if err == nil {
			t.Errorf("%s: missing object produced no error", e.Name())
			continue
		}
		if !strings.Contains(err.Error(), "not found") {
			t.Errorf("%s: unexpected error: %v", e.Name(), err)
		}
	}
}

func TestTruncatedChunkFailsBothEngines(t *testing.T) {
	ds, cl := genCluster(t, partition.D(8, 8, 4), partition.D(4, 4, 4), partition.D(4, 4, 4), 2, 2)
	// Truncate node 1's data file: ranged reads past the end must fail.
	names, _ := ds.Stores[1].List()
	for _, name := range names {
		data, err := ds.Stores[1].ReadRange(name, 0, -1)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.Stores[1].Put(name, data[:len(data)/2]); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range engines() {
		if _, err := e.Run(cl, fullJoinReq(false)); err == nil {
			t.Errorf("%s: truncated chunk produced no error", e.Name())
		}
	}
}

func TestCorruptedChunkBytesFailExtraction(t *testing.T) {
	// Overwrite a chunk with garbage whose length is not a multiple of the
	// record size: the rowmajor extractor must reject it.
	ds, cl := genCluster(t, partition.D(8, 8, 4), partition.D(4, 4, 4), partition.D(4, 4, 4), 1, 1)
	names, _ := ds.Stores[0].List()
	var victim string
	for _, n := range names {
		victim = n
		break
	}
	if err := ds.Stores[0].Put(victim, make([]byte, 13)); err != nil {
		t.Fatal(err)
	}
	for _, e := range engines() {
		if _, err := e.Run(cl, fullJoinReq(false)); err == nil {
			t.Errorf("%s: corrupted chunk produced no error", e.Name())
		}
	}
}

func TestErrorsOverTCPCluster(t *testing.T) {
	ds, _ := genCluster(t, partition.D(8, 8, 4), partition.D(4, 4, 4), partition.D(4, 4, 4), 2, 2)
	cl, err := cluster.New(cluster.Config{
		StorageNodes: 2, ComputeNodes: 2, CacheBytes: 16 << 20, UseTCP: true,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	names, _ := ds.Stores[0].List()
	if err := ds.Stores[0].Delete(names[0]); err != nil {
		t.Fatal(err)
	}
	// IJ fetches over TCP; the remote BDS error must cross the wire.
	for _, e := range engines() {
		if _, err := e.Run(cl, fullJoinReq(false)); err == nil {
			t.Errorf("%s: remote failure produced no error", e.Name())
		}
	}
}
