package transport

import "sciview/internal/metrics"

// Package-level frame/byte counters, nil (no-op) until WireMetrics. They
// sit at the framing layer, so every TCP exchange — BDS fetches, service
// RPCs, stats probes — is counted regardless of which Conn carried it.
// "sent" covers request frames written by clients and response frames
// written by servers; "recv" covers the mirror reads. With both ends
// in-process (loopback clusters) each frame is therefore observed twice:
// once per side, like a per-host NIC counter would.
var (
	metFramesSent *metrics.Counter
	metFramesRecv *metrics.Counter
	metBytesSent  *metrics.Counter
	metBytesRecv  *metrics.Counter
)

// WireMetrics registers the transport's frame and byte counters in reg.
// Call once at process startup, before any traffic flows; the framing hot
// paths read the handles without synchronization afterwards. A nil
// registry leaves the counters as no-ops.
func WireMetrics(reg *metrics.Registry) {
	metFramesSent = reg.Counter("sciview_transport_frames_total", "Wire frames by direction.", "dir", "sent")
	metFramesRecv = reg.Counter("sciview_transport_frames_total", "Wire frames by direction.", "dir", "recv")
	metBytesSent = reg.Counter("sciview_transport_bytes_total", "Wire bytes (headers included) by direction.", "dir", "sent")
	metBytesRecv = reg.Counter("sciview_transport_bytes_total", "Wire bytes (headers included) by direction.", "dir", "recv")
}
