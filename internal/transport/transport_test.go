package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// echoHandler responds with method:payload, erroring on method "fail".
func echoHandler(method string, payload []byte) ([]byte, error) {
	if method == "fail" {
		return nil, errors.New("boom")
	}
	return append([]byte(method+":"), payload...), nil
}

func testTransport(t *testing.T, tr Transport) {
	t.Helper()
	closer, err := tr.Serve("bds-0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	if _, err := tr.Serve("bds-0", echoHandler); err == nil {
		t.Error("duplicate Serve should fail")
	}
	if _, err := tr.Dial("missing"); !errors.Is(err, ErrUnknownService) {
		t.Errorf("Dial(missing) = %v, want ErrUnknownService", err)
	}

	conn, err := tr.Dial("bds-0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	resp, err := conn.Call("get", []byte("chunk7"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("get:chunk7")) {
		t.Errorf("resp = %q", resp)
	}

	// Empty payload.
	resp, err = conn.Call("ping", nil)
	if err != nil || string(resp) != "ping:" {
		t.Errorf("ping = %q, %v", resp, err)
	}

	// Remote errors carry service/method context.
	_, err = conn.Call("fail", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("expected RemoteError, got %v", err)
	}
	if re.Service != "bds-0" || re.Method != "fail" || re.Msg != "boom" {
		t.Errorf("remote error = %+v", re)
	}

	// Large payload round trip (exercises framing).
	big := bytes.Repeat([]byte{0xAB}, 1<<20)
	resp, err = conn.Call("blob", big)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != len(big)+len("blob:") {
		t.Errorf("large response length %d", len(resp))
	}
}

func TestInProc(t *testing.T) { testTransport(t, NewInProc()) }

func TestTCP(t *testing.T) { testTransport(t, NewTCP()) }

func TestInProcUnregister(t *testing.T) {
	tr := NewInProc()
	closer, _ := tr.Serve("svc", echoHandler)
	conn, _ := tr.Dial("svc")
	closer.Close()
	if _, err := conn.Call("m", nil); !errors.Is(err, ErrUnknownService) {
		t.Errorf("call after unregister = %v", err)
	}
	// Name can be reused after close.
	if _, err := tr.Serve("svc", echoHandler); err != nil {
		t.Errorf("re-register failed: %v", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	tr := NewTCP()
	closer, err := tr.Serve("svc", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := tr.Dial("svc")
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			for i := 0; i < 50; i++ {
				msg := fmt.Sprintf("g%d-%d", g, i)
				resp, err := conn.Call("echo", []byte(msg))
				if err != nil {
					t.Error(err)
					return
				}
				if string(resp) != "echo:"+msg {
					t.Errorf("resp = %q", resp)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestTCPSharedConnConcurrentCalls(t *testing.T) {
	tr := NewTCP()
	closer, err := tr.Serve("svc", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	conn, err := tr.Dial("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				msg := fmt.Sprintf("%d-%d", g, i)
				resp, err := conn.Call("m", []byte(msg))
				if err != nil || string(resp) != "m:"+msg {
					t.Errorf("call: %q %v", resp, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestTCPRegisterRemoteAndAddr(t *testing.T) {
	tr := NewTCP()
	closer, err := tr.Serve("real", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	addr, ok := tr.Addr("real")
	if !ok || addr == "" {
		t.Fatal("Addr lookup failed")
	}
	// A second registry learns the service by address.
	tr2 := NewTCP()
	tr2.RegisterRemote("alias", addr)
	conn, err := tr2.Dial("alias")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp, err := conn.Call("m", []byte("x"))
	if err != nil || string(resp) != "m:x" {
		t.Errorf("aliased call = %q, %v", resp, err)
	}
	// Direct DialAddr.
	conn2, err := DialAddr("direct", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Call("m", nil); err != nil {
		t.Error(err)
	}
}

func TestTCPServeAfterClose(t *testing.T) {
	tr := NewTCP()
	closer, err := tr.Serve("svc", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Addr("svc"); ok {
		t.Error("address should be unregistered after close")
	}
	// Name reusable.
	closer2, err := tr.Serve("svc", echoHandler)
	if err != nil {
		t.Fatalf("re-serve: %v", err)
	}
	closer2.Close()
}
