package transport

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestTCPCallCancellation: a Call blocked on a slow handler returns
// ctx.Err() promptly when cancelled instead of hanging, and the connection
// recovers (transparent redial) for the next call.
func TestTCPCallCancellation(t *testing.T) {
	tr := NewTCP()
	release := make(chan struct{})
	var calls atomic.Int64
	closer, err := tr.Serve("slow", func(method string, payload []byte) ([]byte, error) {
		if calls.Add(1) == 1 {
			<-release
		}
		return []byte("done"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	conn, err := tr.Dial("slow")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = conn.CallContext(ctx, "m", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	close(release)

	// The poisoned socket must be redialed transparently.
	resp, err := conn.CallContext(context.Background(), "m", nil)
	if err != nil {
		t.Fatalf("call after cancellation: %v", err)
	}
	if string(resp) != "done" {
		t.Fatalf("resp = %q", resp)
	}
}

// TestTCPCallDeadline: a context deadline becomes a socket deadline.
func TestTCPCallDeadline(t *testing.T) {
	tr := NewTCP()
	release := make(chan struct{})
	closer, err := tr.Serve("slow", func(method string, payload []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	// LIFO: release the handler before closer.Close drains, or the
	// server's wg.Wait would block on the parked handler forever.
	defer close(release)
	conn, err := tr.Dial("slow")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = conn.CallContext(ctx, "m", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestInProcCallContext: the in-process conn rejects an already-cancelled
// context without invoking the handler.
func TestInProcCallContext(t *testing.T) {
	tr := NewInProc()
	var calls atomic.Int64
	closer, err := tr.Serve("svc", func(method string, payload []byte) ([]byte, error) {
		calls.Add(1)
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	conn, err := tr.Dial("svc")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := conn.CallContext(ctx, "m", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Fatal("handler ran despite cancelled context")
	}
	if resp, err := conn.CallContext(context.Background(), "m", nil); err != nil || string(resp) != "ok" {
		t.Fatalf("live context call: %q, %v", resp, err)
	}
}

// TestTCPServeDrain: closing the server while a request is in flight lets
// that request complete and deliver its response (graceful drain), rather
// than cutting the connection mid-exchange.
func TestTCPServeDrain(t *testing.T) {
	tr := NewTCP()
	inHandler := make(chan struct{})
	release := make(chan struct{})
	closer, err := tr.Serve("drain", func(method string, payload []byte) ([]byte, error) {
		close(inHandler)
		<-release
		return []byte("drained"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := tr.Dial("drain")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	respCh := make(chan []byte, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := conn.Call("m", nil)
		respCh <- resp
		errCh <- err
	}()
	<-inHandler

	closeDone := make(chan error, 1)
	go func() { closeDone <- closer.Close() }()
	// Close must block on the in-flight request; give it a moment to
	// prove it is draining rather than aborting.
	select {
	case <-closeDone:
		t.Fatal("server closed while a request was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)

	if err := <-closeDone; err != nil {
		t.Fatalf("close: %v", err)
	}
	if resp, err := <-respCh, <-errCh; err != nil || string(resp) != "drained" {
		t.Fatalf("in-flight response = %q, %v", resp, err)
	}
}
