package transport

import (
	"context"
	"io"
	"time"
)

// FaultHook decides the fate of one transport operation. It is consulted
// before every Call/CallContext (and Dial) with the target service and
// method; returning a non-nil error injects that error instead of
// performing the exchange, and a positive delay stalls the exchange first.
// Implementations are expected to be deterministic given a seeded
// schedule — internal/fault.Injector provides one.
type FaultHook interface {
	// Fault is consulted once per operation. method is "" for Dial.
	Fault(service, method string) (delay time.Duration, err error)
}

// Faulty wraps a Transport with fault injection: every dialed connection's
// calls pass through the hook, which can drop them (inject errors), delay
// them, or black-hole a crashed node's services entirely. Serve is passed
// through untouched — faults are injected on the caller's side of the
// wire, where a real network loses them.
type Faulty struct {
	Inner Transport
	Hook  FaultHook
}

// NewFaulty wraps tr so every connection consults hook.
func NewFaulty(tr Transport, hook FaultHook) *Faulty {
	return &Faulty{Inner: tr, Hook: hook}
}

// Serve implements Transport.
func (f *Faulty) Serve(service string, h Handler) (io.Closer, error) {
	return f.Inner.Serve(service, h)
}

// Dial implements Transport. The dial itself is also subject to injection.
func (f *Faulty) Dial(service string) (Conn, error) {
	if f.Hook != nil {
		delay, err := f.Hook.Fault(service, "")
		if delay > 0 {
			time.Sleep(delay)
		}
		if err != nil {
			return nil, err
		}
	}
	conn, err := f.Inner.Dial(service)
	if err != nil {
		return nil, err
	}
	return &faultyConn{inner: conn, service: service, hook: f.Hook}, nil
}

type faultyConn struct {
	inner   Conn
	service string
	hook    FaultHook
}

func (c *faultyConn) Call(method string, payload []byte) ([]byte, error) {
	return c.CallContext(context.Background(), method, payload)
}

func (c *faultyConn) CallContext(ctx context.Context, method string, payload []byte) ([]byte, error) {
	if c.hook != nil {
		delay, err := c.hook.Fault(c.service, method)
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
		}
		if err != nil {
			return nil, err
		}
	}
	return c.inner.CallContext(ctx, method, payload)
}

func (c *faultyConn) Close() error { return c.inner.Close() }

// verify interface compliance.
var _ Transport = (*Faulty)(nil)
