package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCP is a Transport over real TCP sockets on the loopback (or any)
// interface. Services listen on ephemeral ports; a shared registry maps
// service names to addresses so Dial needs only the name, mirroring the
// directory role the MetaData Service plays for physical deployments.
//
// Wire format (all integers little-endian):
//
//	request:  u16 methodLen | method | u32 payloadLen | payload
//	response: u8 status (0 ok, 1 remote error) | u32 len | bytes
type TCP struct {
	mu    sync.RWMutex
	addrs map[string]string
}

// NewTCP returns a TCP transport with an empty service registry.
func NewTCP() *TCP {
	return &TCP{addrs: make(map[string]string)}
}

// Addr returns the listen address of a registered service, for wiring
// external processes.
func (t *TCP) Addr(service string) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	a, ok := t.addrs[service]
	return a, ok
}

// RegisterRemote maps a service name to an address served by another
// process (e.g. a standalone node started by cmd/sciview-node).
func (t *TCP) RegisterRemote(service, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[service] = addr
}

// Serve implements Transport: it starts a TCP listener on an ephemeral
// loopback port and serves each connection on its own goroutine.
func (t *TCP) Serve(service string, h Handler) (io.Closer, error) {
	return t.ServeAddr(service, "127.0.0.1:0", h)
}

// ServeAddr is Serve with an explicit listen address.
func (t *TCP) ServeAddr(service, addr string, h Handler) (io.Closer, error) {
	t.mu.Lock()
	if _, ok := t.addrs[service]; ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("transport: service %q already registered", service)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.mu.Unlock()
		return nil, fmt.Errorf("transport: listen for %q: %w", service, err)
	}
	t.addrs[service] = ln.Addr().String()
	t.mu.Unlock()

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-done:
					return
				default:
					// Transient accept failure; keep serving.
					continue
				}
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				serveConn(conn, h)
			}()
		}
	}()
	return closerFunc(func() error {
		close(done)
		err := ln.Close()
		t.mu.Lock()
		delete(t.addrs, service)
		t.mu.Unlock()
		wg.Wait()
		return err
	}), nil
}

func serveConn(conn net.Conn, h Handler) {
	defer conn.Close()
	for {
		method, payload, err := readRequest(conn)
		if err != nil {
			return // client closed or framing error: drop the connection
		}
		resp, herr := h(method, payload)
		if werr := writeResponse(conn, resp, herr); werr != nil {
			return
		}
	}
}

func readRequest(r io.Reader) (string, []byte, error) {
	var mlen uint16
	if err := binary.Read(r, binary.LittleEndian, &mlen); err != nil {
		return "", nil, err
	}
	mbuf := make([]byte, mlen)
	if _, err := io.ReadFull(r, mbuf); err != nil {
		return "", nil, err
	}
	var plen uint32
	if err := binary.Read(r, binary.LittleEndian, &plen); err != nil {
		return "", nil, err
	}
	if plen > 1<<30 {
		return "", nil, fmt.Errorf("transport: oversized payload %d", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return "", nil, err
	}
	return string(mbuf), payload, nil
}

func writeRequest(w io.Writer, method string, payload []byte) error {
	buf := make([]byte, 0, 2+len(method)+4+len(payload))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(method)))
	buf = append(buf, method...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

func writeResponse(w io.Writer, resp []byte, herr error) error {
	var buf []byte
	if herr != nil {
		msg := herr.Error()
		buf = make([]byte, 0, 1+4+len(msg))
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(msg)))
		buf = append(buf, msg...)
	} else {
		buf = make([]byte, 0, 1+4+len(resp))
		buf = append(buf, 0)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(resp)))
		buf = append(buf, resp...)
	}
	_, err := w.Write(buf)
	return err
}

func readResponse(r io.Reader) ([]byte, bool, error) {
	var status [1]byte
	if _, err := io.ReadFull(r, status[:]); err != nil {
		return nil, false, err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, false, err
	}
	if n > 1<<30 {
		return nil, false, fmt.Errorf("transport: oversized response %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, false, err
	}
	return body, status[0] != 0, nil
}

// Dial implements Transport.
func (t *TCP) Dial(service string) (Conn, error) {
	t.mu.RLock()
	addr, ok := t.addrs[service]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownService, service)
	}
	return DialAddr(service, addr)
}

// DialAddr connects directly to a service address (bypassing the
// registry), for cross-process clients.
func DialAddr(service, addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q at %s: %w", service, addr, err)
	}
	return &tcpConn{service: service, conn: c}, nil
}

type tcpConn struct {
	service string
	mu      sync.Mutex // serializes request/response pairs on the socket
	conn    net.Conn
}

func (c *tcpConn) Call(method string, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeRequest(c.conn, method, payload); err != nil {
		return nil, fmt.Errorf("transport: sending %s.%s: %w", c.service, method, err)
	}
	body, isErr, err := readResponse(c.conn)
	if err != nil {
		return nil, fmt.Errorf("transport: receiving %s.%s: %w", c.service, method, err)
	}
	if isErr {
		return nil, &RemoteError{Service: c.service, Method: method, Msg: string(body)}
	}
	return body, nil
}

func (c *tcpConn) Close() error { return c.conn.Close() }
