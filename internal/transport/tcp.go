package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sciview/internal/tuple"
)

// TCP is a Transport over real TCP sockets on the loopback (or any)
// interface. Services listen on ephemeral ports; a shared registry maps
// service names to addresses so Dial needs only the name, mirroring the
// directory role the MetaData Service plays for physical deployments.
//
// Wire format (all integers little-endian):
//
//	request:  u16 methodLen | method | u32 payloadLen | payload
//	response: u8 status (0 ok, 1 remote error, 2 unavailable, 3 timeout) |
//	          u32 len | bytes
//
// Statuses 2 and 3 carry the error taxonomy across the wire: a handler
// failure wrapping ErrUnavailable or ErrTimeout is reconstructed on the
// client with the same sentinel in its chain, so errors.Is classification
// is substrate-independent.
type TCP struct {
	mu    sync.RWMutex
	addrs map[string]string
}

// NewTCP returns a TCP transport with an empty service registry.
func NewTCP() *TCP {
	return &TCP{addrs: make(map[string]string)}
}

// Addr returns the listen address of a registered service, for wiring
// external processes.
func (t *TCP) Addr(service string) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	a, ok := t.addrs[service]
	return a, ok
}

// RegisterRemote maps a service name to an address served by another
// process (e.g. a standalone node started by cmd/sciview-node).
func (t *TCP) RegisterRemote(service, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[service] = addr
}

// Serve implements Transport: it starts a TCP listener on an ephemeral
// loopback port and serves each connection on its own goroutine.
func (t *TCP) Serve(service string, h Handler) (io.Closer, error) {
	return t.ServeAddr(service, "127.0.0.1:0", h)
}

// tcpServer tracks one service's listener and live connections so Close
// can drain gracefully: stop accepting, let requests already being handled
// finish (their responses are written), then tear the connections down.
type tcpServer struct {
	ln   net.Listener
	h    Handler
	wg   sync.WaitGroup
	mu   sync.Mutex
	done chan struct{}
	open map[net.Conn]struct{}
}

// ServeAddr is Serve with an explicit listen address.
func (t *TCP) ServeAddr(service, addr string, h Handler) (io.Closer, error) {
	t.mu.Lock()
	if _, ok := t.addrs[service]; ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("transport: service %q already registered", service)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.mu.Unlock()
		return nil, fmt.Errorf("transport: listen for %q: %w", service, err)
	}
	t.addrs[service] = ln.Addr().String()
	t.mu.Unlock()

	srv := &tcpServer{
		ln:   ln,
		h:    h,
		done: make(chan struct{}),
		open: make(map[net.Conn]struct{}),
	}
	srv.wg.Add(1)
	go srv.acceptLoop()
	return closerFunc(func() error {
		err := srv.shutdown()
		t.mu.Lock()
		delete(t.addrs, service)
		t.mu.Unlock()
		return err
	}), nil
}

func (s *tcpServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				// Transient accept failure; keep serving.
				continue
			}
		}
		s.mu.Lock()
		select {
		case <-s.done:
			s.mu.Unlock()
			conn.Close()
			return
		default:
		}
		s.open[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *tcpServer) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.open, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		method, payload, err := readRequest(conn)
		if err != nil {
			return // client closed, shutdown nudge, or framing error
		}
		resp, herr := s.h(method, payload)
		werr := writeResponse(conn, resp, herr)
		// The exchange is over: recycle the request payload and the
		// handler's response buffer (see Handler's ownership contract).
		// Guard the unlikely case of a handler echoing its input back.
		aliased := len(resp) > 0 && len(payload) > 0 && &resp[0] == &payload[0]
		tuple.PutBuf(payload)
		if !aliased {
			tuple.PutBuf(resp)
		}
		if werr != nil {
			return
		}
		select {
		case <-s.done:
			return // drained: the in-flight request got its response
		default:
		}
	}
}

// shutdown drains the server: stop accepting, unblock connections idle in
// a read (an expired read deadline fails only the pending read — a handler
// mid-request still writes its response), then wait for every connection
// goroutine to finish its current exchange and exit.
func (s *tcpServer) shutdown() error {
	s.mu.Lock()
	select {
	case <-s.done:
		s.mu.Unlock()
		return nil
	default:
	}
	close(s.done)
	err := s.ln.Close()
	for conn := range s.open {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func readRequest(r io.Reader) (string, []byte, error) {
	var mlen uint16
	if err := binary.Read(r, binary.LittleEndian, &mlen); err != nil {
		return "", nil, err
	}
	mbuf := make([]byte, mlen)
	if _, err := io.ReadFull(r, mbuf); err != nil {
		return "", nil, err
	}
	var plen uint32
	if err := binary.Read(r, binary.LittleEndian, &plen); err != nil {
		return "", nil, err
	}
	if plen > 1<<30 {
		return "", nil, fmt.Errorf("transport: oversized payload %d", plen)
	}
	payload := tuple.GetBuf(int(plen))[:plen]
	if _, err := io.ReadFull(r, payload); err != nil {
		tuple.PutBuf(payload)
		return "", nil, err
	}
	metFramesRecv.Inc()
	metBytesRecv.Add(int64(2 + int(mlen) + 4 + int(plen)))
	return string(mbuf), payload, nil
}

func writeRequest(w io.Writer, method string, payload []byte) error {
	buf := tuple.GetBuf(2 + len(method) + 4 + len(payload))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(method)))
	buf = append(buf, method...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	if err == nil {
		metFramesSent.Inc()
		metBytesSent.Add(int64(len(buf)))
	}
	tuple.PutBuf(buf)
	return err
}

// response status codes.
const (
	statusOK          = 0
	statusRemoteError = 1
	statusUnavailable = 2
	statusTimeout     = 3
)

func writeResponse(w io.Writer, resp []byte, herr error) error {
	var buf []byte
	if herr != nil {
		status := byte(statusRemoteError)
		if errors.Is(herr, ErrUnavailable) {
			status = statusUnavailable
		} else if errors.Is(herr, ErrTimeout) {
			status = statusTimeout
		}
		msg := herr.Error()
		buf = tuple.GetBuf(1 + 4 + len(msg))
		buf = append(buf, status)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(msg)))
		buf = append(buf, msg...)
	} else {
		buf = tuple.GetBuf(1 + 4 + len(resp))
		buf = append(buf, statusOK)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(resp)))
		buf = append(buf, resp...)
	}
	_, err := w.Write(buf)
	if err == nil {
		metFramesSent.Inc()
		metBytesSent.Add(int64(len(buf)))
	}
	tuple.PutBuf(buf)
	return err
}

func readResponse(r io.Reader) ([]byte, byte, error) {
	var status [1]byte
	if _, err := io.ReadFull(r, status[:]); err != nil {
		return nil, 0, err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, 0, err
	}
	if n > 1<<30 {
		return nil, 0, fmt.Errorf("transport: oversized response %d", n)
	}
	body := tuple.GetBuf(int(n))[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		tuple.PutBuf(body)
		return nil, 0, err
	}
	metFramesRecv.Inc()
	metBytesRecv.Add(int64(1 + 4 + int(n)))
	return body, status[0], nil
}

// Dial implements Transport.
func (t *TCP) Dial(service string) (Conn, error) {
	t.mu.RLock()
	addr, ok := t.addrs[service]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %w: %q", ErrUnavailable, ErrUnknownService, service)
	}
	return DialAddr(service, addr)
}

// DialAddr connects directly to a service address (bypassing the
// registry), for cross-process clients.
func DialAddr(service, addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q at %s: %w: %w", service, addr, ErrUnavailable, err)
	}
	return &tcpConn{service: service, addr: addr, conn: c}, nil
}

type tcpConn struct {
	service string
	addr    string
	mu      sync.Mutex // serializes request/response pairs on the socket
	conn    net.Conn   // nil after a mid-exchange abort; redialed lazily
	closed  bool
}

func (c *tcpConn) Call(method string, payload []byte) ([]byte, error) {
	return c.CallContext(context.Background(), method, payload)
}

// CallContext performs one request/response exchange observing ctx. A
// context deadline is armed as a socket deadline before the exchange; a
// cancellation mid-exchange trips the socket immediately via an expired
// deadline. Either way the call returns ctx.Err() instead of hanging.
// Because an aborted exchange leaves the stream mid-frame, the underlying
// socket is then discarded and transparently redialed on the next call.
func (c *tcpConn) CallContext(ctx context.Context, method string, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.closed {
		return nil, fmt.Errorf("transport: %s: connection closed", c.service)
	}
	if c.conn == nil { // reconnect after an aborted exchange
		conn, err := net.Dial("tcp", c.addr)
		if err != nil {
			return nil, fmt.Errorf("transport: redial %q at %s: %w: %w", c.service, c.addr, ErrUnavailable, err)
		}
		c.conn = conn
	}

	if d, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(d)
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	// A cancellation (as opposed to a deadline) must also unblock socket
	// I/O: watch ctx for the duration of the exchange and trip the socket
	// by expiring its deadline.
	watchStop := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-ctx.Done():
			c.conn.SetDeadline(time.Now())
		case <-watchStop:
		}
	}()
	finish := func(err error) error {
		close(watchStop)
		<-watchDone
		if cerr := ctx.Err(); cerr != nil {
			// The stream may be mid-frame: poison this socket and let the
			// next call redial.
			c.conn.Close()
			c.conn = nil
			return cerr
		}
		if err != nil {
			// A failed exchange also leaves the stream in an unknown
			// state: discard the socket so the next call starts clean.
			c.conn.Close()
			c.conn = nil
		}
		return err
	}

	if err := writeRequest(c.conn, method, payload); err != nil {
		return nil, c.wireErr("sending", method, finish(err))
	}
	body, status, err := readResponse(c.conn)
	if err != nil {
		return nil, c.wireErr("receiving", method, finish(err))
	}
	if err := finish(nil); err != nil {
		return nil, err
	}
	switch status {
	case statusOK:
		return body, nil
	case statusUnavailable:
		return nil, fmt.Errorf("%w: %s.%s: %s", ErrUnavailable, c.service, method, body)
	case statusTimeout:
		return nil, fmt.Errorf("%w: %s.%s: %s", ErrTimeout, c.service, method, body)
	default:
		return nil, &RemoteError{Service: c.service, Method: method, Msg: string(body)}
	}
}

// wireErr classifies a mid-exchange I/O failure for the error taxonomy:
// context errors pass through untouched, socket timeouts become
// ErrTimeout, and everything else (resets, EOFs from a crashed server)
// becomes ErrUnavailable.
func (c *tcpConn) wireErr(verb, method string, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	sentinel := ErrUnavailable
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		sentinel = ErrTimeout
	}
	return fmt.Errorf("transport: %s %s.%s: %w: %w", verb, c.service, method, sentinel, err)
}

func (c *tcpConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
