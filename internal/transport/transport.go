// Package transport provides the message layer between the framework's
// services: a minimal request/response RPC with two interchangeable
// implementations — an in-process registry (the default substrate of the
// emulated cluster) and real TCP with length-prefixed framing (used by the
// standalone node binary and integration tests).
//
// Bandwidth is modeled separately by simio; transport moves the bytes.
package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Handler processes one request addressed to a service method and returns
// the response payload. Errors are propagated to the caller as
// *RemoteError values.
//
// Ownership: payload is valid only for the duration of the call — handlers
// that need it later must copy. Conversely, the returned response buffer
// belongs to the transport once the handler returns (the TCP server
// recycles it through the tuple buffer pool after writing the frame), so
// handlers must not retain it either. All gob/codec handlers satisfy this
// naturally: decoding copies out of payload, and each response is encoded
// into a fresh (typically pooled) buffer.
type Handler func(method string, payload []byte) ([]byte, error)

// Conn is a client connection to one service.
type Conn interface {
	// Call sends a request and waits for the response.
	Call(method string, payload []byte) ([]byte, error)
	// CallContext is Call observing ctx: it returns ctx.Err() instead of
	// blocking past cancellation or a deadline. Implementations abort the
	// in-flight exchange as promptly as their substrate allows (the TCP
	// transport arms socket deadlines; the in-process transport checks
	// around the handler, which runs in the caller's goroutine).
	CallContext(ctx context.Context, method string, payload []byte) ([]byte, error)
	io.Closer
}

// Transport registers services by name and connects clients to them.
type Transport interface {
	// Serve registers a service; the returned closer unregisters it.
	Serve(service string, h Handler) (io.Closer, error)
	// Dial connects to a registered service.
	Dial(service string) (Conn, error)
}

// RemoteError is an error returned by the remote handler (as opposed to a
// transport failure). It is terminal: the handler executed and refused the
// request, so retrying or failing over cannot help.
type RemoteError struct {
	Service string
	Method  string
	Msg     string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: %s.%s: %s", e.Service, e.Method, e.Msg)
}

// ErrUnknownService is returned by Dial for unregistered service names.
var ErrUnknownService = errors.New("transport: unknown service")

// Error taxonomy sentinels. Both substrates wrap their failures so
// errors.Is classification works uniformly: the retry/failover layer treats
// ErrUnavailable and ErrTimeout as retryable I/O faults and everything
// else — notably *RemoteError — as terminal.
var (
	// ErrUnavailable marks transient reachability failures: refused or
	// broken connections, dropped exchanges, crashed nodes.
	ErrUnavailable = errors.New("transport: unavailable")
	// ErrTimeout marks an exchange that exceeded its time budget without
	// the caller's context expiring (e.g. a socket deadline).
	ErrTimeout = errors.New("transport: timeout")
)

// IsRetryable reports whether err is a transient transport fault worth
// retrying or failing over: an ErrUnavailable or ErrTimeout anywhere in
// its chain. Context errors and remote (application) errors are terminal.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrTimeout)
}

// InProc is an in-process Transport: Call invokes the handler directly in
// the caller's goroutine. It is the zero-overhead substrate for the
// emulated cluster, where nodes are goroutines of one process.
type InProc struct {
	mu       sync.RWMutex
	services map[string]Handler
}

// NewInProc returns an empty in-process transport.
func NewInProc() *InProc {
	return &InProc{services: make(map[string]Handler)}
}

// Serve implements Transport.
func (t *InProc) Serve(service string, h Handler) (io.Closer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.services[service]; ok {
		return nil, fmt.Errorf("transport: service %q already registered", service)
	}
	t.services[service] = h
	return closerFunc(func() error {
		t.mu.Lock()
		defer t.mu.Unlock()
		delete(t.services, service)
		return nil
	}), nil
}

// Dial implements Transport.
func (t *InProc) Dial(service string) (Conn, error) {
	t.mu.RLock()
	_, ok := t.services[service]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %w: %q", ErrUnavailable, ErrUnknownService, service)
	}
	return &inprocConn{t: t, service: service}, nil
}

type inprocConn struct {
	t       *InProc
	service string
}

func (c *inprocConn) Call(method string, payload []byte) ([]byte, error) {
	return c.CallContext(context.Background(), method, payload)
}

func (c *inprocConn) CallContext(ctx context.Context, method string, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.t.mu.RLock()
	h, ok := c.t.services[c.service]
	c.t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %w: %q", ErrUnavailable, ErrUnknownService, c.service)
	}
	resp, err := h(method, payload)
	if cerr := ctx.Err(); cerr != nil {
		// The handler ran in our goroutine; a cancellation that raced it
		// still wins, matching the TCP transport's behaviour.
		return nil, cerr
	}
	if err != nil {
		// A handler failure carrying a taxonomy sentinel is a transient
		// I/O fault (an injected drop, a crashed node), not an application
		// refusal: keep the sentinel in the chain so errors.Is
		// classification matches the TCP substrate's.
		if errors.Is(err, ErrUnavailable) {
			return nil, fmt.Errorf("%w: %s.%s: %v", ErrUnavailable, c.service, method, err)
		}
		if errors.Is(err, ErrTimeout) {
			return nil, fmt.Errorf("%w: %s.%s: %v", ErrTimeout, c.service, method, err)
		}
		return nil, &RemoteError{Service: c.service, Method: method, Msg: err.Error()}
	}
	return resp, nil
}

func (c *inprocConn) Close() error { return nil }

type closerFunc func() error

func (f closerFunc) Close() error { return f() }
