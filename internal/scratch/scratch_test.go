package scratch

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"sciview/internal/simio"
	"sciview/internal/tuple"
)

func testManager() (*Manager, *simio.MemStore) {
	store := simio.NewMemStore()
	return NewManager(simio.NewDisk(store, 0, 0), "t", "test", nil, nil), store
}

func TestCreateAndFileNaming(t *testing.T) {
	m, _ := testManager()
	a := m.Create("run")
	b := m.Create("run")
	if a.Name() == b.Name() {
		t.Errorf("Create returned duplicate names: %q", a.Name())
	}
	if !strings.HasPrefix(a.Name(), "t/") {
		t.Errorf("name %q lacks the manager prefix", a.Name())
	}
	// File is the deterministic get-or-create variant.
	c := m.File("bucket")
	if c != m.File("bucket") {
		t.Error("File returned distinct handles for the same label")
	}
	if c.Name() != "t/bucket" {
		t.Errorf("File name = %q, want t/bucket", c.Name())
	}
	if m.Files() != 3 {
		t.Errorf("Files() = %d, want 3", m.Files())
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	m, _ := testManager()
	f := m.Create("r")
	payload := []byte("hello scratch world")
	if err := f.Append(payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Append(payload); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), payload...), payload...)
	if !bytes.Equal(got, want) {
		t.Errorf("ReadAll = %q, want %q", got, want)
	}
	if m.BytesWritten() != int64(len(want)) || m.BytesRead() != int64(len(want)) {
		t.Errorf("counters: written=%d read=%d, want %d each", m.BytesWritten(), m.BytesRead(), len(want))
	}
}

func TestReaderChunks(t *testing.T) {
	m, _ := testManager()
	f := m.Create("big")
	// Three read chunks plus a tail.
	data := make([]byte, 3*readChunk+123)
	for i := range data {
		data[i] = byte(i)
	}
	if err := f.Append(data); err != nil {
		t.Fatal(err)
	}
	rd, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	if rd.Remaining() != int64(len(data)) {
		t.Errorf("Remaining = %d, want %d", rd.Remaining(), len(data))
	}
	got, err := io.ReadAll(rd)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("streamed bytes differ from appended bytes")
	}
	if rd.Remaining() != 0 {
		t.Errorf("Remaining after EOF = %d", rd.Remaining())
	}
}

// TestTruncationDetected is the no-silent-truncation property: a file
// whose stored size disagrees with the appended size (someone truncated
// or half-wrote it behind the manager's back) fails the read loudly.
func TestTruncationDetected(t *testing.T) {
	m, store := testManager()
	f := m.Create("r")
	if err := f.Append([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(f.Name(), []byte("0123")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAll(); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("ReadAll on a truncated file: err = %v, want truncation error", err)
	}
	if _, err := f.Open(); err == nil {
		t.Error("Open on a truncated file succeeded")
	}
}

// TestBrokenAfterWriteError: a failed append marks the file broken; the
// store may hold a partial record, so later appends and reads must fail
// rather than serve it.
func TestBrokenAfterWriteError(t *testing.T) {
	store := simio.NewMemStore()
	disk := simio.NewDisk(store, 0, 0)
	fail := false
	disk.Fault = func(op string) error {
		if op == "write" && fail {
			return &simio.PartialWriteError{Rule: "test"}
		}
		return nil
	}
	m := NewManager(disk, "t", "test", nil, nil)
	f := m.Create("r")
	if err := f.Append([]byte("intact-record")); err != nil {
		t.Fatal(err)
	}
	fail = true
	err := f.Append([]byte("doomed-record"))
	var pw *simio.PartialWriteError
	if err == nil || !errors.As(err, &pw) {
		t.Fatalf("faulted append: err = %v, want PartialWriteError", err)
	}
	fail = false
	if err := f.Append([]byte("more")); err == nil {
		t.Error("append after a write error succeeded on a broken file")
	}
	if _, err := f.ReadAll(); err == nil {
		t.Error("read after a write error served a possibly-partial file")
	}
}

func TestReleaseAndReleaseAll(t *testing.T) {
	m, store := testManager()
	a := m.Create("a")
	b := m.Create("b")
	for _, f := range []*File{a, b} {
		if err := f.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	m.Release(a)
	if names, _ := store.List(); len(names) != 1 {
		t.Errorf("after Release: store holds %v", names)
	}
	if live := m.Live(); len(live) != 1 || live[0] != b.Name() {
		t.Errorf("Live = %v, want [%s]", live, b.Name())
	}
	m.ReleaseAll()
	m.ReleaseAll() // idempotent
	if names, _ := store.List(); len(names) != 0 {
		t.Errorf("after ReleaseAll: store holds %v", names)
	}
	if live := m.Live(); len(live) != 0 {
		t.Errorf("Live after ReleaseAll = %v", live)
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	schema := tuple.NewSchema(
		tuple.Attr{Name: "x", Kind: tuple.Coord},
		tuple.Attr{Name: "y", Kind: tuple.Coord},
		tuple.Attr{Name: "z", Kind: tuple.Coord},
	)
	st := tuple.NewSubTable(tuple.ID{Table: 1, Chunk: 2}, schema, 0)
	for i := 0; i < 17; i++ {
		st.AppendRow(float32(i), float32(i)*0.5, -float32(i))
	}
	data := EncodeRows(st)
	got, err := DecodeRows(schema, data, tuple.ID{Table: -1, Chunk: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != st.NumRows() {
		t.Fatalf("decoded %d rows, want %d", got.NumRows(), st.NumRows())
	}
	for r := 0; r < st.NumRows(); r++ {
		for c := 0; c < schema.NumAttrs(); c++ {
			if got.Value(r, c) != st.Value(r, c) {
				t.Fatalf("row %d col %d = %g, want %g", r, c, got.Value(r, c), st.Value(r, c))
			}
		}
	}
	// A non-integral record count is corruption, not a short batch.
	if _, err := DecodeRows(schema, data[:len(data)-3], tuple.ID{}); err == nil {
		t.Error("DecodeRows accepted a partial record")
	}
}
