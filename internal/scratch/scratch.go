// Package scratch is the shared spill-file manager for out-of-core
// operators: external sort runs, aggregation partitions, and hash-join
// build partitions all go through one Manager per (operator, compute
// node) pair. The manager owns naming, lifecycle (every file it creates
// is deleted by Release/ReleaseAll, so a plan's Close reaps everything
// even after faults or early exit), telemetry (spill bytes/durations
// into the engine observation collector and trace spans), and — the
// safety property the fault-injection suite leans on — size-verified
// reads: a file whose store size disagrees with the bytes successfully
// appended fails the read loudly instead of silently truncating the
// query result.
package scratch

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sciview/internal/engine"
	"sciview/internal/simio"
	"sciview/internal/trace"
	"sciview/internal/tuple"
)

// readChunk is the Reader's sequential fetch granularity: large enough
// to amortize the modeled per-read throttle bookkeeping, small enough
// that a k-way merge over many runs stays within a few hundred KiB of
// buffer per run.
const readChunk = 256 << 10

// Manager pools scratch files on one compute node's spill disk under a
// common name prefix. All methods are safe for concurrent use.
type Manager struct {
	disk   *simio.Disk
	prefix string
	node   string
	rec    *trace.Recorder
	obs    *engine.ObsCollector

	mu    sync.Mutex
	files map[string]*File
	seq   int64

	bytesWritten atomic.Int64
	bytesRead    atomic.Int64
	created      atomic.Int64
}

// NewManager returns a manager writing under prefix on disk. node names
// the owner in trace spans; rec and obs may be nil.
func NewManager(disk *simio.Disk, prefix, node string, rec *trace.Recorder, obs *engine.ObsCollector) *Manager {
	return &Manager{
		disk: disk, prefix: prefix, node: node, rec: rec, obs: obs,
		files: make(map[string]*File),
	}
}

// Create opens a fresh scratch file with a unique name derived from
// label. The file exists in the store only once something is appended.
func (m *Manager) Create(label string) *File {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	name := fmt.Sprintf("%s/%d-%s", m.prefix, m.seq, label)
	f := &File{m: m, name: name}
	m.files[name] = f
	m.created.Add(1)
	return f
}

// File returns the scratch file with exactly the given label under the
// manager's prefix, creating its handle on first use — the
// deterministic-name variant the GH bucket partitioner uses.
func (m *Manager) File(label string) *File {
	name := m.prefix + "/" + label
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		f = &File{m: m, name: name}
		m.files[name] = f
		m.created.Add(1)
	}
	return f
}

// Release deletes one file from the store and forgets it. Deletion is
// untimed and never consults the fault hook, so cleanup works on a
// "crashed" node.
func (m *Manager) Release(f *File) {
	if f == nil {
		return
	}
	m.mu.Lock()
	delete(m.files, f.name)
	m.mu.Unlock()
	_ = m.disk.Delete(f.name)
}

// ReleaseAll deletes every live file. Idempotent; safe after faults.
func (m *Manager) ReleaseAll() {
	m.mu.Lock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	m.files = make(map[string]*File)
	m.mu.Unlock()
	for _, name := range names {
		_ = m.disk.Delete(name)
	}
}

// Live returns the names of files not yet released (hygiene audits).
func (m *Manager) Live() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	return names
}

// BytesWritten returns the total bytes successfully appended.
func (m *Manager) BytesWritten() int64 { return m.bytesWritten.Load() }

// BytesRead returns the total bytes read back.
func (m *Manager) BytesRead() int64 { return m.bytesRead.Load() }

// Files returns how many scratch files the manager ever created — the
// spill-partition count surfaced through OpStat.SpillParts.
func (m *Manager) Files() int64 { return m.created.Load() }

// File is one scratch file. A File is written by one goroutine at a
// time (concurrent writers to distinct files are fine); its own mutex
// guards the size/broken bookkeeping against concurrent readers.
type File struct {
	m    *Manager
	name string

	mu     sync.Mutex
	size   int64
	broken error
}

// Name is the file's full store name.
func (f *File) Name() string { return f.name }

// Size returns the bytes successfully appended so far.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// Append extends the file, billing the spill write. On error the file
// is marked broken: the store may hold a partial record (a short write
// really does persist a prefix), so every subsequent operation fails
// rather than ever serving truncated data.
func (f *File) Append(data []byte) error { return f.AppendRows(data, 0) }

// AppendRows is Append with a row count for the trace span.
func (f *File) AppendRows(data []byte, rows int64) error {
	f.mu.Lock()
	if f.broken != nil {
		err := f.broken
		f.mu.Unlock()
		return fmt.Errorf("scratch: %s is broken by an earlier write error: %w", f.name, err)
	}
	f.mu.Unlock()
	start := time.Now()
	if err := f.m.disk.Append(f.name, data); err != nil {
		f.mu.Lock()
		f.broken = err
		f.mu.Unlock()
		return fmt.Errorf("scratch: append %s: %w", f.name, err)
	}
	f.mu.Lock()
	f.size += int64(len(data))
	f.mu.Unlock()
	f.m.bytesWritten.Add(int64(len(data)))
	f.m.obs.SpillWrite(int64(len(data)), time.Since(start))
	f.m.rec.Span(f.m.node, trace.KindSpill, f.name, start, int64(len(data)), rows)
	return nil
}

// verify checks the file is intact: not broken, and the store holds
// exactly the bytes the successful appends recorded.
func (f *File) verify() (int64, error) {
	f.mu.Lock()
	size, broken := f.size, f.broken
	f.mu.Unlock()
	if broken != nil {
		return 0, fmt.Errorf("scratch: %s is broken by an earlier write error: %w", f.name, broken)
	}
	stored, err := f.m.disk.Size(f.name)
	if err != nil {
		if size == 0 {
			return 0, nil // never written, never stored: empty is intact
		}
		return 0, fmt.Errorf("scratch: stat %s: %w", f.name, err)
	}
	if stored != size {
		return 0, fmt.Errorf("scratch: %s holds %d bytes, expected %d (truncated or partially written)",
			f.name, stored, size)
	}
	return size, nil
}

// ReadAll reads the whole file back, billing the spill read. The read
// fails if the stored size disagrees with the appended size.
func (f *File) ReadAll() ([]byte, error) {
	size, err := f.verify()
	if err != nil {
		return nil, err
	}
	if size == 0 {
		return nil, nil
	}
	start := time.Now()
	data, err := f.m.disk.ReadRange(f.name, 0, -1)
	if err != nil {
		return nil, fmt.Errorf("scratch: read %s: %w", f.name, err)
	}
	if int64(len(data)) != size {
		return nil, fmt.Errorf("scratch: read %s returned %d bytes, expected %d", f.name, len(data), size)
	}
	f.m.bytesRead.Add(size)
	f.m.obs.SpillRead(size, time.Since(start))
	f.m.rec.Span(f.m.node, trace.KindBucketRead, f.name, start, size, 0)
	return data, nil
}

// Open returns a buffered sequential reader over the file, verifying
// the stored size up front.
func (f *File) Open() (*Reader, error) {
	size, err := f.verify()
	if err != nil {
		return nil, err
	}
	return &Reader{f: f, end: size}, nil
}

// Reader streams a scratch file in readChunk pieces, billing each piece
// as spill-read traffic. It implements io.Reader; use io.ReadFull for
// record framing.
type Reader struct {
	f   *File
	off int64
	end int64
	buf []byte
	pos int
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.pos >= len(r.buf) {
		if r.off >= r.end {
			return 0, io.EOF
		}
		n := r.end - r.off
		if n > readChunk {
			n = readChunk
		}
		start := time.Now()
		data, err := r.f.m.disk.ReadRange(r.f.name, r.off, n)
		if err != nil {
			return 0, fmt.Errorf("scratch: read %s@%d: %w", r.f.name, r.off, err)
		}
		if int64(len(data)) != n {
			return 0, fmt.Errorf("scratch: read %s@%d returned %d bytes, expected %d (truncated)",
				r.f.name, r.off, len(data), n)
		}
		r.f.m.bytesRead.Add(n)
		r.f.m.obs.SpillRead(n, time.Since(start))
		r.f.m.rec.Span(r.f.m.node, trace.KindBucketRead, r.f.name, start, n, 0)
		r.off += n
		r.buf, r.pos = data, 0
	}
	n := copy(p, r.buf[r.pos:])
	r.pos += n
	return n, nil
}

// Remaining returns the bytes left to stream (buffered + unread).
func (r *Reader) Remaining() int64 {
	return int64(len(r.buf)-r.pos) + (r.end - r.off)
}

// ---------------------------------------------------------------------
// Row codec

// Spilled rows are raw row-major float32 records: the schema is known to
// both the writing and reading phase, so no framing is needed, and the
// on-disk byte count equals rows × record size — the quantity the cost
// model charges for.

// EncodeRows writes st's rows into a pooled buffer (tuple.GetBuf): both
// simio stores copy on Append, so spill callers release the buffer with
// tuple.PutBuf right after the write and steady-state spilling
// allocates nothing.
func EncodeRows(st *tuple.SubTable) []byte {
	na := st.Schema.NumAttrs()
	size := st.NumRows() * na * 4
	out := tuple.GetBuf(size)[:size]
	off := 0
	for r := 0; r < st.NumRows(); r++ {
		for c := 0; c < na; c++ {
			binary.LittleEndian.PutUint32(out[off:], math.Float32bits(st.Value(r, c)))
			off += 4
		}
	}
	return out
}

// DecodeRows reconstructs a sub-table from EncodeRows output. id labels
// the decoded batch.
func DecodeRows(schema tuple.Schema, data []byte, id tuple.ID) (*tuple.SubTable, error) {
	rec := schema.RecordSize()
	if rec == 0 || len(data)%rec != 0 {
		return nil, fmt.Errorf("scratch: %d bytes is not a multiple of record size %d", len(data), rec)
	}
	rows := len(data) / rec
	na := schema.NumAttrs()
	// One backing array for all columns keeps decode at two allocations.
	backing := make([]float32, na*rows)
	cols := make([][]float32, na)
	for c := range cols {
		cols[c] = backing[c*rows : (c+1)*rows : (c+1)*rows]
	}
	off := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < na; c++ {
			cols[c][r] = math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
	}
	return tuple.FromColumns(id, schema, cols)
}
