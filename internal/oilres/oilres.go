// Package oilres generates synthetic oil-reservoir-study datasets with the
// characteristics of the paper's evaluation data: two virtual tables over
// the same 3-D grid — T1(x, y, z, oilp, ...) and T2(x, y, z, wp, ...) —
// regularly partitioned with (possibly different) block sizes, the blocks
// written as binary chunks distributed block-cyclically across storage
// nodes.
//
// Every grid cell appears exactly once in each table, so an equi-join on
// the coordinate attributes has record-level selectivity 1, the paper's
// standing assumption.
package oilres

import (
	"fmt"

	"sciview/internal/bbox"
	"sciview/internal/chunk"
	"sciview/internal/metadata"
	"sciview/internal/partition"
	"sciview/internal/simio"
	"sciview/internal/tuple"
)

// Config describes one generated dataset.
type Config struct {
	// Grid is the full grid extent g = (g_x, g_y, g_z) in cells; the total
	// tuple count per table is T = g_x·g_y·g_z.
	Grid partition.Dims
	// LeftPart and RightPart are the partition sizes p and q.
	LeftPart  partition.Dims
	RightPart partition.Dims
	// LeftName/RightName name the virtual tables (default "T1"/"T2").
	LeftName  string
	RightName string
	// LeftMeasures/RightMeasures are the scalar attributes of each table
	// beyond the coordinates (defaults: ["oilp"] and ["wp"]). The Figure 7
	// experiment grows these lists to vary the record size.
	LeftMeasures  []string
	RightMeasures []string
	// StorageNodes is the number of storage nodes chunks are distributed
	// over (block-cyclic).
	StorageNodes int
	// Format is the chunk layout (default "rowmajor").
	Format string
	// Placement distributes chunks over storage nodes: "blockcyclic"
	// (default, the paper's experimental setup) or "contiguous" (each node
	// gets a consecutive run of chunk ids — i.e. a spatial slab, the
	// layout a non-parallel writer would produce).
	Placement string
	// Replicas is the total number of placements per chunk (primary
	// included), clamped to StorageNodes. Values < 2 mean no replication.
	Replicas int
	// Seed drives the synthetic measure values.
	Seed int64
}

func (c *Config) setDefaults() {
	if c.LeftName == "" {
		c.LeftName = "T1"
	}
	if c.RightName == "" {
		c.RightName = "T2"
	}
	if c.LeftMeasures == nil {
		c.LeftMeasures = []string{"oilp"}
	}
	if c.RightMeasures == nil {
		c.RightMeasures = []string{"wp"}
	}
	if c.Format == "" {
		c.Format = "rowmajor"
	}
	if c.Placement == "" {
		c.Placement = "blockcyclic"
	}
	if c.StorageNodes == 0 {
		c.StorageNodes = 1
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := (partition.Spec{Grid: c.Grid, Part: c.LeftPart}).Validate(); err != nil {
		return fmt.Errorf("oilres: left: %w", err)
	}
	if err := (partition.Spec{Grid: c.Grid, Part: c.RightPart}).Validate(); err != nil {
		return fmt.Errorf("oilres: right: %w", err)
	}
	if c.StorageNodes < 1 {
		return fmt.Errorf("oilres: StorageNodes = %d", c.StorageNodes)
	}
	if _, err := chunk.Lookup(c.Format); err != nil {
		return err
	}
	switch c.Placement {
	case "", "blockcyclic", "contiguous":
	default:
		return fmt.Errorf("oilres: unknown placement %q", c.Placement)
	}
	return nil
}

// placeNode maps a chunk id to its storage node per the placement policy.
func (c Config) placeNode(chunkID, numChunks int) int {
	if c.Placement == "contiguous" {
		per := (numChunks + c.StorageNodes - 1) / c.StorageNodes
		return chunkID / per
	}
	return partition.BlockCyclicNode(chunkID, c.StorageNodes)
}

// Dataset is a generated dataset: a populated catalog plus one object
// store per storage node holding the chunk bytes.
type Dataset struct {
	Config  Config
	Catalog *metadata.Catalog
	Stores  []simio.Store
	Left    *metadata.TableDef
	Right   *metadata.TableDef
}

// Schema returns the schema of a table with the given measure attributes.
func Schema(measures []string) tuple.Schema {
	attrs := []tuple.Attr{
		{Name: "x", Kind: tuple.Coord},
		{Name: "y", Kind: tuple.Coord},
		{Name: "z", Kind: tuple.Coord},
	}
	for _, m := range measures {
		attrs = append(attrs, tuple.Attr{Name: m, Kind: tuple.Measure})
	}
	return tuple.NewSchema(attrs...)
}

// Generate builds the dataset into fresh in-memory stores (or into the
// given stores, one per storage node — e.g. file stores for persistence).
// Generation is administrative and unthrottled: the paper's measured costs
// begin at query time.
func Generate(cfg Config, stores ...simio.Store) (*Dataset, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(stores) == 0 {
		stores = make([]simio.Store, cfg.StorageNodes)
		for i := range stores {
			stores[i] = simio.NewMemStore()
		}
	}
	if len(stores) != cfg.StorageNodes {
		return nil, fmt.Errorf("oilres: %d stores for %d nodes", len(stores), cfg.StorageNodes)
	}
	ds := &Dataset{Config: cfg, Catalog: metadata.NewCatalog(), Stores: stores}

	var err error
	ds.Left, err = genTable(ds, cfg.LeftName, cfg.LeftMeasures, cfg.LeftPart, 1)
	if err != nil {
		return nil, err
	}
	ds.Right, err = genTable(ds, cfg.RightName, cfg.RightMeasures, cfg.RightPart, 2)
	if err != nil {
		return nil, err
	}
	if err := Replicate(ds.Catalog, ds.Stores, cfg.Replicas); err != nil {
		return nil, err
	}
	return ds, nil
}

func genTable(ds *Dataset, name string, measures []string, part partition.Dims, salt int64) (*metadata.TableDef, error) {
	cfg := ds.Config
	schema := Schema(measures)
	def, err := ds.Catalog.CreateTable(name, schema)
	if err != nil {
		return nil, err
	}
	ex, err := chunk.Lookup(cfg.Format)
	if err != nil {
		return nil, err
	}
	spec := partition.Spec{Grid: cfg.Grid, Part: part}
	offsets := make([]int64, cfg.StorageNodes)
	object := func(node int) string { return fmt.Sprintf("%s/node%d.dat", name, node) }

	n := int(spec.NumChunks())
	vals := make([]float32, schema.NumAttrs())
	for id := 0; id < n; id++ {
		bx, by, bz := spec.ChunkCoords(id)
		lo, hi := spec.CellRange(bx, by, bz)
		st := tuple.NewSubTable(tuple.ID{Table: def.ID, Chunk: int32(id)}, schema, int(part.Cells()))
		for z := lo.Z; z < hi.Z; z++ {
			for y := lo.Y; y < hi.Y; y++ {
				for x := lo.X; x < hi.X; x++ {
					vals[0], vals[1], vals[2] = float32(x), float32(y), float32(z)
					cell := (int64(z)*int64(cfg.Grid.Y)+int64(y))*int64(cfg.Grid.X) + int64(x)
					for m := range measures {
						vals[3+m] = measureValue(cfg.Seed, salt, int64(m), cell)
					}
					st.AppendRow(vals...)
				}
			}
		}
		data, err := ex.Encode(st)
		if err != nil {
			return nil, err
		}
		node := cfg.placeNode(id, n)
		if err := ds.Stores[node].Append(object(node), data); err != nil {
			return nil, err
		}
		b := st.Bounds()
		desc := &chunk.Desc{
			Object: object(node),
			Offset: offsets[node],
			Size:   int64(len(data)),
			Node:   node,
			Format: cfg.Format,
			Attrs:  schema.Attrs,
			Rows:   st.NumRows(),
			Bounds: bbox.New(b.Lo, b.Hi),
		}
		offsets[node] += int64(len(data))
		if _, err := ds.Catalog.AddChunk(def.ID, desc); err != nil {
			return nil, err
		}
	}
	return def, nil
}

// measureValue derives a deterministic pseudo-random measure in [0, 1)
// from (seed, table salt, attribute, cell) via a splitmix64 mix.
func measureValue(seed, salt, attr, cell int64) float32 {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(salt)<<32 ^ uint64(attr)<<16 ^ uint64(cell)
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float32(x>>40) / float32(1<<24)
}

// Tuples returns T, the per-table tuple count.
func (ds *Dataset) Tuples() int64 { return ds.Config.Grid.Cells() }

// JoinAttrs returns the coordinate attributes both tables share — the
// default equi-join keys.
func (ds *Dataset) JoinAttrs() []string { return []string{"x", "y", "z"} }
