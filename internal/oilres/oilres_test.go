package oilres

import (
	"testing"

	"sciview/internal/congraph"
	"sciview/internal/metadata"
	"sciview/internal/partition"
	"sciview/internal/simio"
)

func smallConfig() Config {
	return Config{
		Grid:         partition.D(8, 8, 4),
		LeftPart:     partition.D(4, 4, 4),
		RightPart:    partition.D(2, 4, 4),
		StorageNodes: 3,
		Seed:         7,
	}
}

func TestGenerateBasics(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Tuples() != 8*8*4 {
		t.Errorf("Tuples = %d", ds.Tuples())
	}
	leftChunks := ds.Catalog.Chunks(ds.Left.ID)
	rightChunks := ds.Catalog.Chunks(ds.Right.ID)
	if len(leftChunks) != 4 { // (8/4)(8/4)(4/4)
		t.Errorf("left chunks = %d, want 4", len(leftChunks))
	}
	if len(rightChunks) != 8 {
		t.Errorf("right chunks = %d, want 8", len(rightChunks))
	}
	// Block-cyclic placement across 3 nodes.
	counts := make(map[int]int)
	for _, d := range leftChunks {
		counts[d.Node]++
	}
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 {
		t.Errorf("placement = %v", counts)
	}
	// Row counts.
	for _, d := range leftChunks {
		if d.Rows != 64 {
			t.Errorf("chunk %v rows = %d, want 64", d.ID(), d.Rows)
		}
	}
}

func TestGeneratedChunksExtractAndMatch(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Read every chunk back via a throttle-less disk and check coords
	// cover the block exactly once.
	for _, def := range []*metadata.TableDef{ds.Left, ds.Right} {
		seen := make(map[[3]int32]bool)
		for _, d := range ds.Catalog.Chunks(def.ID) {
			disk := simio.NewDisk(ds.Stores[d.Node], 0, 0)
			data, err := disk.ReadRange(d.Object, d.Offset, d.Size)
			if err != nil {
				t.Fatal(err)
			}
			st, err := extractHelper(d, data)
			if err != nil {
				t.Fatal(err)
			}
			if st.NumRows() != d.Rows {
				t.Fatalf("chunk %v extracted %d rows, desc says %d", d.ID(), st.NumRows(), d.Rows)
			}
			for r := 0; r < st.NumRows(); r++ {
				key := [3]int32{int32(st.Value(r, 0)), int32(st.Value(r, 1)), int32(st.Value(r, 2))}
				if seen[key] {
					t.Fatalf("duplicate cell %v in table %s", key, def.Name)
				}
				seen[key] = true
				// Measures in [0,1).
				v := st.Value(r, 3)
				if v < 0 || v >= 1 {
					t.Fatalf("measure out of range: %v", v)
				}
			}
		}
		if len(seen) != int(ds.Tuples()) {
			t.Errorf("table %s covers %d cells, want %d", def.Name, len(seen), ds.Tuples())
		}
	}
}

func TestBoundsAreTight(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := ds.Catalog.Chunks(ds.Left.ID)[0]
	// First left block covers cells [0,4)x[0,4)x[0,4): inclusive bounds 0..3.
	for dim := 0; dim < 3; dim++ {
		if d.Bounds.Lo[dim] != 0 || d.Bounds.Hi[dim] != 3 {
			t.Errorf("dim %d bounds = [%g,%g]", dim, d.Bounds.Lo[dim], d.Bounds.Hi[dim])
		}
	}
}

func TestConnectivityMatchesFormulas(t *testing.T) {
	cfg := smallConfig()
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := congraph.Build(ds.Catalog.Chunks(ds.Left.ID), ds.Catalog.Chunks(ds.Right.ID), ds.JoinAttrs())
	if err != nil {
		t.Fatal(err)
	}
	if int64(g.NumEdges()) != partition.NumEdges(cfg.Grid, cfg.LeftPart, cfg.RightPart) {
		t.Errorf("n_e = %d, formula %d", g.NumEdges(),
			partition.NumEdges(cfg.Grid, cfg.LeftPart, cfg.RightPart))
	}
	if int64(len(g.Components())) != partition.NumComponents(cfg.Grid, cfg.LeftPart, cfg.RightPart) {
		t.Errorf("components = %d", len(g.Components()))
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := smallConfig()
	bad.LeftPart = partition.D(3, 4, 4)
	if _, err := Generate(bad); err == nil {
		t.Error("non-dividing partition should fail")
	}
	bad = smallConfig()
	bad.Format = "hdf5"
	if _, err := Generate(bad); err == nil {
		t.Error("unknown format should fail")
	}
	bad = smallConfig()
	if _, err := Generate(bad, simio.NewMemStore()); err == nil {
		t.Error("wrong store count should fail")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 3; n++ {
		an, _ := a.Stores[n].List()
		bn, _ := b.Stores[n].List()
		if len(an) != len(bn) {
			t.Fatal("object lists differ")
		}
		for i := range an {
			da, _ := a.Stores[n].ReadRange(an[i], 0, -1)
			db, _ := b.Stores[n].ReadRange(bn[i], 0, -1)
			if string(da) != string(db) {
				t.Fatalf("object %s differs between runs", an[i])
			}
		}
	}
	// Different seed changes measures.
	cfg := smallConfig()
	cfg.Seed = 8
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := c.Stores[0].List()
	da, _ := a.Stores[0].ReadRange(ca[0], 0, -1)
	dc, _ := c.Stores[0].ReadRange(ca[0], 0, -1)
	if string(da) == string(dc) {
		t.Error("different seeds should change measure bytes")
	}
}

func TestCSVFormatDataset(t *testing.T) {
	cfg := smallConfig()
	cfg.Format = "csv"
	cfg.Grid = partition.D(4, 4, 2)
	cfg.LeftPart = partition.D(2, 2, 2)
	cfg.RightPart = partition.D(2, 2, 2)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := ds.Catalog.Chunks(ds.Left.ID)[0]
	disk := simio.NewDisk(ds.Stores[d.Node], 0, 0)
	data, err := disk.ReadRange(d.Object, d.Offset, d.Size)
	if err != nil {
		t.Fatal(err)
	}
	st, err := extractHelper(d, data)
	if err != nil || st.NumRows() != 8 {
		t.Fatalf("csv extract: rows=%d err=%v", st.NumRows(), err)
	}
}
