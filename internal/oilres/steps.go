package oilres

import (
	"fmt"

	"sciview/internal/bbox"
	"sciview/internal/chunk"
	"sciview/internal/partition"
	"sciview/internal/simio"
	"sciview/internal/tuple"
)

// Time-step generation: the simulation-output arrival pattern. A reservoir
// study writes one slab of cells per simulated time step; the dataset is
// queryable from the first step on and grows by appended chunks. Here the
// grid's Z axis is the time-like axis: the base dataset covers the first
// Z − steps·stepZ cells and each step contributes the chunks of one more
// slab, with cell values and chunk placement identical to what a one-shot
// generation of the full grid would have produced (appending every step and
// generating the whole grid are byte-equivalent datasets).

// StepChunk is one encoded chunk payload of a time-step append batch,
// ready for the ingest path: the bytes, their layout, row count, bounds,
// and the storage node the placement policy assigns.
type StepChunk struct {
	Table  string
	Format string
	Data   []byte
	Rows   int
	Bounds bbox.Box
	Node   int
}

// StepZ returns the Z extent of one time-step slab: the smallest cell
// count that is a whole number of block layers in both tables' partitions.
func StepZ(cfg Config) int {
	return lcm(cfg.LeftPart.Z, cfg.RightPart.Z)
}

func lcm(a, b int) int {
	g, x := a, b
	for x != 0 {
		g, x = x, g%x
	}
	return a / g * b
}

// GenerateSteps builds the base dataset covering all but the last `steps`
// time-step slabs of cfg.Grid, plus one chunk batch per withheld slab.
// Appending the batches in order reproduces, chunk for chunk, the dataset
// Generate would build for the full grid: same chunk ids (when batches are
// registered in order), same cell values, and — under the default
// block-cyclic placement — the same node placement. The
// returned Dataset's Config carries the base grid; cfg.Replicas applies to
// the base only — the ingest path replicates appended chunks itself.
func GenerateSteps(cfg Config, steps int, stores ...simio.Store) (*Dataset, [][]StepChunk, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	stepZ := StepZ(cfg)
	if steps < 0 {
		return nil, nil, fmt.Errorf("oilres: negative steps %d", steps)
	}
	if withheld := steps * stepZ; withheld >= cfg.Grid.Z {
		return nil, nil, fmt.Errorf("oilres: %d steps of %d cells leave no base slab in grid Z %d",
			steps, stepZ, cfg.Grid.Z)
	}

	baseCfg := cfg
	baseCfg.Grid.Z = cfg.Grid.Z - steps*stepZ
	ds, err := Generate(baseCfg, stores...)
	if err != nil {
		return nil, nil, err
	}

	batches := make([][]StepChunk, steps)
	for s := 0; s < steps; s++ {
		zLo := baseCfg.Grid.Z + s*stepZ
		var batch []StepChunk
		for _, t := range []struct {
			name     string
			measures []string
			part     partition.Dims
			salt     int64
		}{
			{cfg.LeftName, cfg.LeftMeasures, cfg.LeftPart, 1},
			{cfg.RightName, cfg.RightMeasures, cfg.RightPart, 2},
		} {
			chunks, err := genSlabChunks(cfg, t.name, t.measures, t.part, t.salt, zLo, zLo+stepZ)
			if err != nil {
				return nil, nil, err
			}
			batch = append(batch, chunks...)
		}
		batches[s] = batch
	}
	return ds, batches, nil
}

// genSlabChunks encodes the chunks of one table covering grid cells
// [zLo, zHi) along Z, in global chunk-id order, with the node each chunk
// would have had in a full-grid generation.
func genSlabChunks(cfg Config, name string, measures []string, part partition.Dims, salt int64, zLo, zHi int) ([]StepChunk, error) {
	schema := Schema(measures)
	ex, err := chunk.Lookup(cfg.Format)
	if err != nil {
		return nil, err
	}
	spec := partition.Spec{Grid: cfg.Grid, Part: part} // full grid: global ids
	blocks := spec.Blocks()
	numChunks := int(spec.NumChunks())

	var out []StepChunk
	vals := make([]float32, schema.NumAttrs())
	for bz := zLo / part.Z; bz < zHi/part.Z; bz++ {
		for by := 0; by < blocks.Y; by++ {
			for bx := 0; bx < blocks.X; bx++ {
				id := spec.ChunkIndex(bx, by, bz)
				lo, hi := spec.CellRange(bx, by, bz)
				st := tuple.NewSubTable(tuple.ID{Chunk: int32(id)}, schema, int(part.Cells()))
				for z := lo.Z; z < hi.Z; z++ {
					for y := lo.Y; y < hi.Y; y++ {
						for x := lo.X; x < hi.X; x++ {
							vals[0], vals[1], vals[2] = float32(x), float32(y), float32(z)
							cell := (int64(z)*int64(cfg.Grid.Y)+int64(y))*int64(cfg.Grid.X) + int64(x)
							for m := range measures {
								vals[3+m] = measureValue(cfg.Seed, salt, int64(m), cell)
							}
							st.AppendRow(vals...)
						}
					}
				}
				data, err := ex.Encode(st)
				if err != nil {
					return nil, err
				}
				b := st.Bounds()
				out = append(out, StepChunk{
					Table:  name,
					Format: cfg.Format,
					Data:   data,
					Rows:   st.NumRows(),
					Bounds: bbox.New(b.Lo, b.Hi),
					Node:   cfg.placeNode(id, numChunks),
				})
			}
		}
	}
	return out, nil
}
