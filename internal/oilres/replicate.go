package oilres

import (
	"fmt"

	"sciview/internal/chunk"
	"sciview/internal/metadata"
	"sciview/internal/simio"
)

// Replicate raises every chunk of the catalog to `copies` total placements
// (primary included), writing the extra copies round-robin to the nodes
// after the primary and registering them with the catalog. Replica bytes
// live under "rep/<primary object>" on each holding node, appended in
// chunk order. copies is clamped to the node count; copies < 2 is a no-op.
//
// Like generation, replication is administrative: bytes go straight to the
// stores, unthrottled — the paper's measured costs begin at query time.
func Replicate(cat *metadata.Catalog, stores []simio.Store, copies int) error {
	for _, def := range cat.Tables() {
		if err := ReplicateDescs(cat, stores, cat.Chunks(def.ID), copies); err != nil {
			return err
		}
	}
	return nil
}

// ReplicateDescs raises just the given chunks to `copies` total placements,
// using the same round-robin placement and "rep/<object>" layout as
// Replicate. The append-ingest path uses it to replicate only a batch's new
// chunks instead of re-walking the whole catalog.
func ReplicateDescs(cat *metadata.Catalog, stores []simio.Store, descs []*chunk.Desc, copies int) error {
	n := len(stores)
	if copies > n {
		copies = n
	}
	if copies < 2 {
		return nil
	}
	for _, d := range descs {
		data, err := stores[d.Node].ReadRange(d.Object, d.Offset, d.Size)
		if err != nil {
			return fmt.Errorf("oilres: replicating chunk %v: %w", d.ID(), err)
		}
		node := d.Node
		for len(d.Nodes()) < copies {
			node = (node + 1) % n
			if _, _, ok := d.Locate(node); ok {
				continue
			}
			obj := "rep/" + d.Object
			off, err := stores[node].Size(obj)
			if err != nil {
				off = 0 // object not created yet
			}
			if err := stores[node].Append(obj, data); err != nil {
				return fmt.Errorf("oilres: replicating chunk %v to node %d: %w", d.ID(), node, err)
			}
			if err := cat.AddReplica(d.Table, d.Chunk, chunk.Replica{Node: node, Object: obj, Offset: off}); err != nil {
				return err
			}
		}
	}
	return nil
}
