package oilres

import (
	"errors"
	"fmt"

	"sciview/internal/chunk"
	"sciview/internal/metadata"
	"sciview/internal/simio"
)

// Replicate raises every chunk of the catalog to `copies` total placements
// (primary included), writing the extra copies round-robin to the nodes
// after the primary and registering them with the catalog. Replica bytes
// live under "rep/<primary object>" on each holding node, appended in
// chunk order. copies is clamped to the node count; copies < 2 is a no-op.
//
// Like generation, replication is administrative: bytes go straight to the
// stores, unthrottled — the paper's measured costs begin at query time.
func Replicate(cat *metadata.Catalog, stores []simio.Store, copies int) error {
	for _, def := range cat.Tables() {
		if err := ReplicateDescs(cat, stores, cat.Chunks(def.ID), copies); err != nil {
			return err
		}
	}
	return nil
}

// ReplicateDescs raises just the given chunks to `copies` total placements,
// using the same round-robin placement and "rep/<object>" layout as
// Replicate. The append-ingest path uses it to replicate only a batch's new
// chunks instead of re-walking the whole catalog.
func ReplicateDescs(cat *metadata.Catalog, stores []simio.Store, descs []*chunk.Desc, copies int) error {
	return ReplicateDescsAvoid(cat, stores, descs, copies, nil)
}

// ReplicateDescsAvoid is ReplicateDescs with a placement veto: nodes for
// which avoid returns true receive no new copies (they are down or
// rejoining). A chunk that cannot reach `copies` placements on non-avoided
// nodes is left under-replicated rather than failing the batch — the
// anti-entropy sweep restores the replication factor once nodes return.
// Placement state is read and committed through the catalog lock, and a
// concurrent commit of the same placement (ErrAlreadyPlaced) counts as
// converged, so repair and ingest replication can overlap safely.
func ReplicateDescsAvoid(cat *metadata.Catalog, stores []simio.Store, descs []*chunk.Desc, copies int, avoid func(node int) bool) error {
	n := len(stores)
	if copies > n {
		copies = n
	}
	if copies < 2 {
		return nil
	}
	for _, d := range descs {
		placed, err := cat.ChunkNodes(d.Table, d.Chunk)
		if err != nil {
			return fmt.Errorf("oilres: replicating chunk %v: %w", d.ID(), err)
		}
		have := len(placed)
		if have >= copies {
			continue
		}
		var data []byte // read lazily: only chunks actually copied pay the read
		for offset := 1; offset < n && have < copies; offset++ {
			node := (d.Node + offset) % n
			if avoid != nil && avoid(node) {
				continue
			}
			if _, _, ok := cat.LocateOn(d.Table, d.Chunk, node); ok {
				continue
			}
			if data == nil {
				data, err = stores[d.Node].ReadRange(d.Object, d.Offset, d.Size)
				if err != nil {
					return fmt.Errorf("oilres: replicating chunk %v: %w", d.ID(), err)
				}
			}
			obj := "rep/" + d.Object
			off, err := stores[node].Size(obj)
			if err != nil {
				off = 0 // object not created yet
			}
			if err := stores[node].Append(obj, data); err != nil {
				return fmt.Errorf("oilres: replicating chunk %v to node %d: %w", d.ID(), node, err)
			}
			err = cat.AddReplica(d.Table, d.Chunk, chunk.Replica{Node: node, Object: obj, Offset: off})
			if err != nil && !errors.Is(err, metadata.ErrAlreadyPlaced) {
				return err
			}
			have++
		}
	}
	return nil
}
