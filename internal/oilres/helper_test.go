package oilres

import (
	"sciview/internal/chunk"
	"sciview/internal/tuple"
)

// extractHelper runs the registered extractor for a descriptor.
func extractHelper(d *chunk.Desc, data []byte) (*tuple.SubTable, error) {
	return chunk.Extract(d, data)
}
