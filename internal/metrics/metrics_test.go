package metrics

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	r.GaugeFunc("gf", "", func() float64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(0.5)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must stay zero")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fetches_total", "Total fetches.")
	c.Inc()
	c.Add(2)
	c.Add(-7) // ignored: counters only go up
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if again := r.Counter("fetches_total", ""); again != c {
		t.Error("re-registration must return the same instrument")
	}

	g := r.Gauge("inflight", "")
	g.Set(4)
	g.Add(-1)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Value())
	}

	h := r.Histogram("lat_seconds", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("hist sum = %g, want %g", got, want)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("sciview_cache_hits_total", "Cache hits.").Add(7)
	r.Gauge("sciview_breaker_state", "Breaker state.", "node", "1").Set(2)
	r.GaugeFunc("sciview_queue_depth", "Waiting queries.", func() float64 { return 4 })
	h := r.Histogram("sciview_query_seconds", "Latency.", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP sciview_cache_hits_total Cache hits.",
		"# TYPE sciview_cache_hits_total counter",
		"sciview_cache_hits_total 7",
		`sciview_breaker_state{node="1"} 2`,
		"sciview_queue_depth 4",
		"# TYPE sciview_query_seconds histogram",
		`sciview_query_seconds_bucket{le="0.5"} 1`,
		`sciview_query_seconds_bucket{le="1"} 2`,
		`sciview_query_seconds_bucket{le="+Inf"} 3`,
		"sciview_query_seconds_sum 3.9",
		"sciview_query_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelsAreOrderIndependent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "a", "1", "b", "2")
	b := r.Counter("x_total", "", "b", "2", "a", "1")
	if a != b {
		t.Error("label order must not split a series")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "").Add(2)
	r.Gauge("a", "").Set(1)
	h := r.Histogram("c_seconds", "", nil)
	h.Observe(2)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d samples, want 3", len(snap))
	}
	if snap[0].Name != "a" || snap[1].Name != "b_total" || snap[2].Name != "c_seconds" {
		t.Fatalf("snapshot order: %+v", snap)
	}
	if !snap[2].IsHist || snap[2].Value != 1 || snap[2].Sum != 2 {
		t.Fatalf("histogram sample: %+v", snap[2])
	}
}

// TestConcurrentObserveAndScrape exercises the lock-free hot path against
// concurrent scrapes (run under -race in check.sh).
func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h_seconds", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5000; j++ {
				c.Inc()
				h.Observe(float64(j) * 1e-4)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 20000 || h.Count() != 20000 {
		t.Fatalf("lost updates: counter %d, hist %d", c.Value(), h.Count())
	}
}

func TestServeEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "").Inc()
	closer, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up_total 1") {
		t.Errorf("metrics endpoint body:\n%s", body)
	}
	// pprof index must answer too.
	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d", resp.StatusCode)
	}
}

// Benchmarks backing the "no-op path costs near zero" claim: a nil
// counter is one predicted branch; a live one is one atomic add.
func BenchmarkCounterNoop(b *testing.B) {
	var r *Registry
	c := r.Counter("x_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterLive(b *testing.B) {
	c := NewRegistry().Counter("x_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramLive(b *testing.B) {
	h := NewRegistry().Histogram("x_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 1e-3)
	}
}
