// Package metrics is a dependency-free metrics registry for the live
// observability surface: counters, gauges and bounded-bucket histograms
// with Prometheus-text-format exposition. The paper's evaluation hinges on
// knowing where time goes (fetch vs. join vs. network); this package makes
// those same quantities continuously scrapeable from a running service
// instead of only reportable after a benchmark run.
//
// Hot-path discipline: every instrument is a pointer whose methods are
// nil-safe no-ops, so an uninstrumented component (nil *Registry anywhere
// in the chain) pays one predicted branch per event and allocates nothing.
// Real instruments update via atomics — no locks on the observation path;
// the registry mutex is touched only at registration and scrape time.
//
//	reg := metrics.NewRegistry()
//	hits := reg.Counter("sciview_cache_hits_total", "Sub-table cache hits.")
//	hits.Inc()                      // atomic add
//	var off *metrics.Registry       // nil registry: everything below no-ops
//	off.Counter("x", "").Inc()      // safe, free
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value. The zero value is usable;
// a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are the default latency histogram bounds, in seconds:
// 100µs .. ~100s, exponential ×~3. Bounded cardinality by construction.
var DefBuckets = []float64{
	1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10, 30, 100,
}

// Histogram counts observations into fixed buckets (cumulative counts are
// computed at scrape time, so Observe touches exactly one bucket counter).
// A nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64      // upper bounds, ascending; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// metric is anything a family can expose.
type metric interface {
	writeSeries(w *bufio.Writer, name, labels string)
}

func (c *Counter) writeSeries(w *bufio.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.Value())
}

func (g *Gauge) writeSeries(w *bufio.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, g.Value())
}

// gaugeFunc samples a callback at scrape time: the cheapest way to expose
// state another component already tracks (queue depth, cache bytes,
// breaker state) without adding anything to its hot path.
type gaugeFunc struct {
	fn func() float64
}

func (g *gaugeFunc) writeSeries(w *bufio.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.fn()))
}

func (h *Histogram) writeSeries(w *bufio.Writer, name, labels string) {
	// Cumulative bucket counts in the Prometheus shape:
	// name_bucket{le="b"} n ... name_bucket{le="+Inf"} total.
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(labels, "le", formatFloat(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(labels, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// family is all series sharing one metric name.
type family struct {
	name, help, typ string
	series          map[string]metric // keyed by rendered label string
	order           []string          // label strings in registration order
}

// Registry holds registered instruments and renders them in Prometheus
// text format. A nil *Registry hands out nil (no-op) instruments from
// every constructor, so callers thread one handle and never branch
// themselves. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// get returns the family, creating it with help/typ on first use, and the
// existing series for the label set (nil if absent).
func (r *Registry) get(name, help, typ, labels string) (*family, metric) {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]metric)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	return f, f.series[labels]
}

func (f *family) add(labels string, m metric) {
	f.series[labels] = m
	f.order = append(f.order, labels)
}

// Counter registers (or returns the existing) counter under name with
// optional label key/value pairs. A nil registry returns a nil (no-op)
// counter.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	labels := renderLabels(labelPairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, m := r.get(name, help, "counter", labels)
	if m != nil {
		return m.(*Counter)
	}
	c := &Counter{}
	f.add(labels, c)
	return c
}

// Gauge registers (or returns the existing) gauge. A nil registry returns
// a nil (no-op) gauge.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	labels := renderLabels(labelPairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, m := r.get(name, help, "gauge", labels)
	if m != nil {
		return m.(*Gauge)
	}
	g := &Gauge{}
	f.add(labels, g)
	return g
}

// GaugeFunc registers a gauge sampled by calling fn at scrape time. fn
// must be safe for concurrent use. Re-registering the same name+labels
// replaces the callback. No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	if r == nil {
		return
	}
	labels := renderLabels(labelPairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, m := r.get(name, help, "gauge", labels)
	if m != nil {
		if gf, ok := m.(*gaugeFunc); ok {
			gf.fn = fn
			return
		}
		panic(fmt.Sprintf("metrics: %s%s registered as a plain gauge, requested as a func", name, labels))
	}
	f.add(labels, &gaugeFunc{fn: fn})
}

// Histogram registers (or returns the existing) histogram with the given
// upper bounds (nil = DefBuckets). A nil registry returns a nil (no-op)
// histogram.
func (r *Registry) Histogram(name, help string, bounds []float64, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	labels := renderLabels(labelPairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, m := r.get(name, help, "histogram", labels)
	if m != nil {
		return m.(*Histogram)
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	f.add(labels, h)
	return h
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format, families sorted by name, series in registration
// order. Safe to call while instruments are being updated.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, n := range names {
		f := r.families[n]
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, labels := range f.order {
			f.series[labels].writeSeries(bw, f.name, labels)
		}
	}
	r.mu.Unlock()
	return bw.Flush()
}

// Sample is one series' value in a Snapshot.
type Sample struct {
	Name   string // metric name with rendered labels, e.g. `x_total{node="0"}`
	Value  float64
	IsHist bool // histograms report Value = observation count
	Sum    float64
}

// Snapshot returns every plain series' current value (histograms report
// their count and sum), sorted by name. Used by benchmark reports to dump
// the registry without an HTTP round trip.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var out []Sample
	for _, f := range r.families {
		for _, labels := range f.order {
			s := Sample{Name: f.name + labels}
			switch m := f.series[labels].(type) {
			case *Counter:
				s.Value = float64(m.Value())
			case *Gauge:
				s.Value = float64(m.Value())
			case *gaugeFunc:
				s.Value = m.fn()
			case *Histogram:
				s.Value = float64(m.Count())
				s.Sum = m.Sum()
				s.IsHist = true
			}
			out = append(out, s)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// renderLabels turns key/value pairs into a deterministic `{k="v",...}`
// string (empty for none). Keys are sorted so registration order cannot
// split one logical series in two.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label pairs %v", pairs))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabel inserts one more label into an already-rendered label string
// (histogram buckets add `le` to the series labels).
func mergeLabel(labels, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}
