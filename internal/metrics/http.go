package metrics

import (
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in Prometheus text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// NewMux returns an http.ServeMux with the observability surface mounted:
// /metrics (Prometheus text format) and the net/http/pprof profiling
// endpoints under /debug/pprof/. Mounted explicitly — not on
// http.DefaultServeMux — so importing this package never leaks handlers
// into unrelated servers.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr and serves the /metrics + pprof mux in a
// background goroutine, returning the closer and the bound address
// (useful with ":0"). The HTTP server is intentionally plain: scrape
// traffic is trusted-operator traffic.
func Serve(addr string, r *Registry) (io.Closer, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: NewMux(r)}
	go srv.Serve(ln)
	return closerFunc(func() error {
		srv.Close()
		return nil
	}), ln.Addr().String(), nil
}

type closerFunc func() error

func (f closerFunc) Close() error { return f() }
