// Package cluster assembles the emulated hardware platform of the paper's
// experiments: a coupled configuration of storage nodes (disks + BDS
// instances) and compute nodes (scratch disks + sub-table caches),
// connected by per-node NICs with modeled bandwidths.
//
// Two storage configurations are supported, matching the paper:
//
//   - Local disks (default): each storage node has its own disk; each
//     compute node has a local scratch disk for Grace Hash buckets.
//   - Shared filesystem (Figure 9): a single NFS-like server performs all
//     I/O. Every node's disk handle shares one pair of read/write
//     throttles, so everybody's I/O — including bucket spills — contends
//     on the same device, and compute nodes have no local disks.
package cluster

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sciview/internal/bds"
	"sciview/internal/breaker"
	"sciview/internal/cache"
	"sciview/internal/fault"
	"sciview/internal/metadata"
	"sciview/internal/metrics"
	"sciview/internal/retry"
	"sciview/internal/simio"
	"sciview/internal/transport"
	"sciview/internal/tuple"
)

// Config describes the emulated hardware.
type Config struct {
	// StorageNodes and ComputeNodes set n_s and n_j.
	StorageNodes int
	ComputeNodes int
	// DiskReadBw/DiskWriteBw are per-disk bandwidths in bytes/second
	// (0 = unlimited): readIO_bw and writeIO_bw in the cost models.
	DiskReadBw  float64
	DiskWriteBw float64
	// NetBw is the per-NIC bandwidth in bytes/second (0 = unlimited).
	// The aggregate storage→compute bandwidth Net_bw(n_s, n_j) is
	// min(n_s, n_j) · NetBw.
	NetBw float64
	// SharedFS selects the single-NFS-server configuration.
	SharedFS bool
	// NFSContention is the shared server's thrash penalty: each request's
	// service time is multiplied by 1 + NFSContention·(concurrent clients − 1).
	// Only meaningful with SharedFS; 0 models an ideal work-conserving
	// server.
	NFSContention float64
	// CacheBytes is each compute node's sub-table cache capacity.
	CacheBytes int64
	// CachePolicy selects the Caching Service's replacement policy:
	// "lru" (default), "fifo" or "clock".
	CachePolicy string
	// CPUSecPerOp models the compute nodes' hash-operation cost: every
	// hash-table insertion or lookup a QES performs is charged this many
	// seconds on the node's CPU device (0 = free, i.e. only the real host
	// cost is paid). This is how the emulated cluster reproduces the
	// CPU/IO balance of the paper's PIII-era nodes — and it makes joiner
	// CPU a modeled resource that parallelizes across nodes regardless of
	// how many host cores the emulation itself has.
	CPUSecPerOp float64
	// Wire selects the fetch codec between storage and compute: "" or
	// "rowmajor" ships decoded row-major sub-tables (SVT1, the historical
	// format); "colenc" negotiates the compressed columnar format (SVT2)
	// — per-column RLE/dictionary/delta vectors with selection and
	// projection already applied in the compressed domain, decoded only
	// when a joiner consumes the rows. The choice is per-request, so
	// peers that do not understand it fall back to row-major.
	Wire string
	// UseTCP serves every BDS instance over real TCP loopback sockets and
	// routes compute-node sub-table fetches through them (wire encoding
	// and all), instead of in-process calls. Modeled bandwidths still
	// apply on top. Close the cluster when done.
	UseTCP bool
	// Faults, when set, injects the chaos schedule into the cluster:
	// sub-table fetches, disk and scratch I/O, and (with UseTCP) transport
	// exchanges all consult it. Nil means no injection.
	Faults *fault.Injector
	// Retry is the per-replica fetch backoff policy. The zero value means
	// retry.Default() (3 attempts, 1ms base, 50ms cap, 0.5 jitter).
	Retry retry.Policy
	// ScratchStores, when set, supplies the backing store for compute
	// node j's scratch disk (hygiene tests audit spill-file lifecycles
	// through real file stores). Nil keeps in-memory stores. Ignored in
	// the shared-filesystem configuration.
	ScratchStores func(j int) simio.Store
	// BreakerThreshold and BreakerCooldown configure the per-storage-node
	// circuit breakers: trip after BreakerThreshold consecutive failures
	// (default 3), probe after BreakerCooldown (default 100ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Metrics, when set, wires the cluster's live observability surface
	// into the registry: cache hit/miss/eviction and singleflight dedup
	// counters, per-storage-node breaker state, and fetch/retry/failover
	// accounting. Nil leaves every hot path on the no-op (near-zero cost)
	// instruments.
	Metrics *metrics.Registry
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.StorageNodes < 1 || c.ComputeNodes < 1 {
		return fmt.Errorf("cluster: need at least 1 storage and 1 compute node (got %d, %d)",
			c.StorageNodes, c.ComputeNodes)
	}
	switch c.Wire {
	case "", "rowmajor", "colenc":
	default:
		return fmt.Errorf("cluster: unknown wire codec %q (want \"rowmajor\" or \"colenc\")", c.Wire)
	}
	return nil
}

// WireEncoded reports whether fetches negotiate the compressed columnar
// wire format.
func (c Config) WireEncoded() bool { return c.Wire == "colenc" }

// WireName returns the effective fetch codec name ("rowmajor" or
// "colenc"), resolving the default.
func (c Config) WireName() string {
	if c.WireEncoded() {
		return "colenc"
	}
	return "rowmajor"
}

// NetAggregateBw returns Net_bw(n_s, n_j): the aggregate storage→compute
// bandwidth, limited by whichever side has fewer NICs.
func (c Config) NetAggregateBw() float64 {
	if c.NetBw <= 0 {
		return 0 // unlimited
	}
	n := c.StorageNodes
	if c.ComputeNodes < n {
		n = c.ComputeNodes
	}
	return float64(n) * c.NetBw
}

// StorageNode is one node of the storage cluster.
type StorageNode struct {
	ID   int
	Disk *simio.Disk
	NIC  *simio.NIC
	BDS  *bds.Service
}

// FetchKey identifies a cached (or in-flight) fetch result: the sub-table
// id plus a signature of the filter and projection that shaped it. Keying
// by id alone was safe while queries ran exclusively and caches were reset
// between runs; under the concurrent query service, queries with different
// predicates or projections share the node caches, and the signature keeps
// their entries from aliasing.
type FetchKey struct {
	ID  tuple.ID
	Sig uint64
}

// Signature hashes a fetch's shaping parameters (range filter and
// projection list) into a FetchKey signature.
func Signature(filter *metadata.Range, project []string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeF := func(f float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	if filter != nil {
		for i, a := range filter.Attrs {
			h.Write([]byte(a))
			h.Write([]byte{0})
			writeF(filter.Lo[i])
			writeF(filter.Hi[i])
		}
	}
	h.Write([]byte{1})
	for _, p := range project {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// ComputeNode is one node of the compute cluster.
type ComputeNode struct {
	ID int
	// Scratch is the node's spill disk for out-of-core operations. In the
	// shared-filesystem configuration it is a handle on the NFS server.
	Scratch *simio.Disk
	NIC     *simio.NIC
	// Cache is the node's Caching Service instance for sub-tables. Values
	// are Fetched — compressed when the wire codec is "colenc" — and are
	// charged at StoredBytes, so resident accounting reflects the bytes
	// actually held rather than the decoded record size.
	Cache cache.Cache[FetchKey, *Fetched]
	// Flight deduplicates concurrent fetches of one sub-table across the
	// queries sharing this node, so N simultaneous cache misses on a key
	// cost one BDS fetch.
	Flight *cache.Flight[FetchKey, *Fetched]
	// CPU is the node's modeled processor: QES instances charge hash
	// operations to it via SpendCPU.
	CPU *simio.Throttle
}

// SpendCPU charges ops hash operations to the node's modeled CPU,
// blocking for the modeled duration. With CPUSecPerOp = 0 it is free.
func (cn *ComputeNode) SpendCPU(ops int64) {
	simio.Wait(cn.CPU.Reserve(ops))
}

// Cluster is the assembled platform.
type Cluster struct {
	Config  Config
	Catalog *metadata.Catalog
	Storage []*StorageNode
	Compute []*ComputeNode

	// runMu arbitrates query executions. Exclusive runs (the historical
	// mode: engines reset caches, counters and throttles at start) take
	// the write side; shared runs — queries admitted by the concurrent
	// query service, which leave cluster state intact so caches and
	// fetch deduplication amortize across queries — take the read side.
	runMu sync.RWMutex

	// nfsRead/nfsWrite are the shared-server throttles (SharedFS only).
	nfsRead  *simio.Throttle
	nfsWrite *simio.Throttle

	// TCP wiring (UseTCP only): per-storage-node servers and per
	// (compute, storage) client connections. Connections serialize their
	// request/response pairs internally.
	servers []io.Closer
	clients [][]*bds.Client // [computeID][storageNode]

	// breakers holds one circuit breaker per storage node; the fetch path
	// consults them before dialing and feeds outcomes back.
	breakers []*breaker.Breaker
	// states tracks each storage node's lifecycle (NodeUp / NodeDown /
	// NodeRejoining). The repair manager owns transitions; fetch routing
	// reads them to order replicas by availability.
	states []atomic.Int32
	// Health accumulates fault-tolerance counters (retries, failovers,
	// engine recoveries); see HealthStats.
	Health Health
	// met holds the live-metrics handles (all nil-safe no-ops when
	// Config.Metrics is nil).
	met clusterMetrics
}

// clusterMetrics is the cluster's slice of the live registry.
type clusterMetrics struct {
	fetches       *metrics.Counter
	fetchBytes    *metrics.Counter
	fetchEncBytes *metrics.Counter
	fetchDecBytes *metrics.Counter
	fetchFailures *metrics.Counter
	retries       *metrics.Counter
	failovers     *metrics.Counter
}

// New assembles a cluster over the given catalog and per-storage-node
// object stores (stores[i] holds node i's chunks). len(stores) must equal
// cfg.StorageNodes.
func New(cfg Config, catalog *metadata.Catalog, stores []simio.Store) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(stores) != cfg.StorageNodes {
		return nil, fmt.Errorf("cluster: %d stores for %d storage nodes", len(stores), cfg.StorageNodes)
	}
	cl := &Cluster{Config: cfg, Catalog: catalog}
	cl.states = make([]atomic.Int32, cfg.StorageNodes)
	// Registry methods are nil-safe: with cfg.Metrics == nil every handle
	// below is a nil no-op instrument, so the hot paths stay uninstrumented
	// at the cost of one predicted branch each.
	reg := cfg.Metrics
	cl.met = clusterMetrics{
		fetches:       reg.Counter("sciview_fetch_total", "Sub-table fetches served to compute nodes."),
		fetchBytes:    reg.Counter("sciview_fetch_bytes_total", "Payload bytes of sub-tables shipped storage to compute."),
		fetchEncBytes: reg.Counter("sciview_fetch_encoded_bytes_total", "Bytes of sub-table fetches as they traveled the wire (compressed when the colenc codec is negotiated)."),
		fetchDecBytes: reg.Counter("sciview_fetch_decoded_bytes_total", "Row-major payload bytes the same fetches decode to; the ratio to encoded bytes is the live wire compression factor."),
		fetchFailures: reg.Counter("sciview_fetch_failures_total", "Fetches that failed after consulting every replica."),
		retries:       reg.Counter("sciview_retry_total", "Backoff re-attempts against the same replica."),
		failovers:     reg.Counter("sciview_failover_total", "Fetches redirected to a subsequent replica."),
	}
	cacheMet := cache.Metrics{
		Hits:      reg.Counter("sciview_cache_hits_total", "Sub-table cache hits across compute nodes."),
		Misses:    reg.Counter("sciview_cache_misses_total", "Sub-table cache misses across compute nodes."),
		Evictions: reg.Counter("sciview_cache_evictions_total", "Sub-table cache evictions across compute nodes."),
	}
	flightLeads := reg.Counter("sciview_flight_leads_total", "Singleflight loads actually executed.")
	flightShared := reg.Counter("sciview_flight_shared_total", "Singleflight callers served by another caller's load.")
	reg.GaugeFunc("sciview_cache_bytes", "Bytes resident in the sub-table caches across compute nodes.", func() float64 {
		var b int64
		for _, cn := range cl.Compute {
			b += cn.Cache.Bytes()
		}
		return float64(b)
	})
	reg.GaugeFunc("sciview_cache_entries", "Entries resident in the sub-table caches across compute nodes.", func() float64 {
		var n int
		for _, cn := range cl.Compute {
			n += cn.Cache.Len()
		}
		return float64(n)
	})
	if cfg.SharedFS {
		cl.nfsRead = simio.NewThrottle(cfg.DiskReadBw)
		cl.nfsWrite = simio.NewThrottle(cfg.DiskWriteBw)
		if cfg.NFSContention > 0 {
			const window = 200 * time.Millisecond
			cl.nfsRead.SetContention(cfg.NFSContention, window)
			cl.nfsWrite.SetContention(cfg.NFSContention, window)
		}
	}
	for i := 0; i < cfg.StorageNodes; i++ {
		var disk *simio.Disk
		if cfg.SharedFS {
			disk = simio.NewSharedDisk(stores[i], cl.nfsRead, cl.nfsWrite)
		} else {
			disk = simio.NewDisk(stores[i], cfg.DiskReadBw, cfg.DiskWriteBw)
		}
		disk.Owner = i
		if cfg.Faults != nil {
			node := fault.StorageNode(i)
			disk.Fault = func(op string) error { return cfg.Faults.Op(node, op) }
		}
		sn := &StorageNode{
			ID:   i,
			Disk: disk,
			NIC:  simio.NewNIC(cfg.NetBw, nil),
			BDS:  bds.New(i, catalog, disk),
		}
		cl.Storage = append(cl.Storage, sn)
		br := breaker.New(cfg.BreakerThreshold, cfg.BreakerCooldown)
		node := strconv.Itoa(i)
		br.SetMetrics(
			reg.Counter("sciview_breaker_trips_total", "Circuit breaker opens per storage node.", "node", node),
			reg.Gauge("sciview_breaker_state", "Breaker state per storage node (0 closed, 1 open, 2 half-open).", "node", node),
		)
		cl.breakers = append(cl.breakers, br)
	}
	for j := 0; j < cfg.ComputeNodes; j++ {
		var scratch *simio.Disk
		if cfg.SharedFS {
			scratch = simio.NewSharedDisk(simio.NewMemStore(), cl.nfsRead, cl.nfsWrite)
		} else {
			store := simio.Store(simio.NewMemStore())
			if cfg.ScratchStores != nil {
				store = cfg.ScratchStores(j)
			}
			scratch = simio.NewDisk(store, cfg.DiskReadBw, cfg.DiskWriteBw)
		}
		scratch.Owner = cfg.StorageNodes + j
		if cfg.Faults != nil {
			node := fault.ComputeNode(j)
			scratch.Fault = func(op string) error { return cfg.Faults.Op(node, op) }
		}
		var cpuRate float64
		if cfg.CPUSecPerOp > 0 {
			cpuRate = 1 / cfg.CPUSecPerOp // "ops per second"
		}
		nodeCache, err := cache.NewPolicy[FetchKey, *Fetched](cfg.CachePolicy, cfg.CacheBytes)
		if err != nil {
			return nil, err
		}
		nodeCache.SetMetrics(cacheMet)
		flight := cache.NewFlight[FetchKey, *Fetched]()
		// A leader whose fetch hits a transient fault hands the key off:
		// waiters retry (and fail over) rather than inherit the error.
		flight.Retryable = transport.IsRetryable
		flight.SetMetrics(flightLeads, flightShared)
		cn := &ComputeNode{
			ID:      j,
			Scratch: scratch,
			NIC:     simio.NewNIC(cfg.NetBw, nil),
			Cache:   nodeCache,
			Flight:  flight,
			CPU:     simio.NewThrottle(cpuRate),
		}
		cl.Compute = append(cl.Compute, cn)
	}
	if cfg.UseTCP {
		if err := cl.wireTCP(); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// wireTCP serves every BDS over TCP loopback and connects each compute
// node to each storage node. With fault injection configured, every
// client-side exchange passes through the chaos schedule first.
func (cl *Cluster) wireTCP() error {
	var tr transport.Transport = transport.NewTCP()
	if cl.Config.Faults != nil {
		tr = transport.NewFaulty(tr, cl.Config.Faults)
	}
	for _, sn := range cl.Storage {
		closer, err := sn.BDS.Serve(tr)
		if err != nil {
			return err
		}
		cl.servers = append(cl.servers, closer)
	}
	cl.clients = make([][]*bds.Client, len(cl.Compute))
	for j := range cl.Compute {
		cl.clients[j] = make([]*bds.Client, len(cl.Storage))
		for s := range cl.Storage {
			client, err := bds.DialNode(tr, s)
			if err != nil {
				return err
			}
			cl.clients[j][s] = client
		}
	}
	return nil
}

// Close releases TCP servers and connections (no-op for in-process
// clusters).
func (cl *Cluster) Close() error {
	var first error
	for _, row := range cl.clients {
		for _, c := range row {
			if c != nil {
				if err := c.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
	}
	cl.clients = nil
	for _, s := range cl.servers {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	cl.servers = nil
	return first
}

// Fetch retrieves sub-table id for compute node computeID: the owning
// storage node's BDS extracts it (paying disk read bandwidth) and the
// result is shipped over both NICs (paying network bandwidth). Fetch does
// not consult the compute node's cache — cache policy belongs to the QES.
func (cl *Cluster) Fetch(computeID int, id tuple.ID, filter *metadata.Range) (*tuple.SubTable, error) {
	return cl.FetchProjected(context.Background(), computeID, id, filter, nil)
}

// FetchProjected is Fetch with projection pushdown: only the named
// attributes travel from the BDS (non-nil project), shrinking the modeled
// transfer. The fetch observes ctx: a cancelled or expired context aborts
// the TCP exchange (when the cluster is wired over sockets) and returns
// ctx.Err() rather than completing the transfer.
//
// Transient faults are retried with exponential backoff; when a replica
// node's attempts are exhausted (or its breaker is open) the fetch fails
// over to the chunk's next replica. Terminal errors — a *RemoteError, a
// cancelled context — abort immediately.
func (cl *Cluster) FetchProjected(ctx context.Context, computeID int, id tuple.ID, filter *metadata.Range, project []string) (*tuple.SubTable, error) {
	f, err := cl.FetchEncoded(ctx, computeID, id, filter, project)
	if err != nil {
		return nil, err
	}
	return f.SubTable()
}

// FetchEncoded is FetchProjected returning the wire-form carrier: with
// Config.Wire = "colenc" the sub-table arrives (and is handed to the
// caller's cache) in its compressed columnar representation, and the
// modeled NIC transfer is charged the compressed frame size — the whole
// point of the codec in the paper's network-bound regimes. With the
// row-major codec the carrier wraps the decoded sub-table and every byte
// count matches the historical path exactly.
func (cl *Cluster) FetchEncoded(ctx context.Context, computeID int, id tuple.ID, filter *metadata.Range, project []string) (*Fetched, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	desc, err := cl.Catalog.Chunk(id.Table, id.Chunk)
	if err != nil {
		return nil, err
	}
	if computeID < 0 || computeID >= len(cl.Compute) {
		return nil, fmt.Errorf("cluster: unknown compute node %d", computeID)
	}
	encoded := cl.Config.WireEncoded()
	f, node, err := cl.replicaFailover(ctx, desc, func(node int) (*Fetched, error) {
		if cl.clients != nil {
			if encoded {
				enc, st, err := cl.clients[computeID][node].SubTableEncoded(ctx, id, filter, project)
				if err != nil {
					return nil, err
				}
				if enc != nil {
					return FetchedEncoded(enc), nil
				}
				return FetchedSubTable(st), nil
			}
			st, err := cl.clients[computeID][node].SubTableProjected(ctx, id, filter, project)
			if err != nil {
				return nil, err
			}
			return FetchedSubTable(st), nil
		}
		if encoded {
			enc, err := cl.Storage[node].BDS.SubTableEncoded(id, filter, project)
			if err != nil {
				return nil, err
			}
			return FetchedEncoded(enc), nil
		}
		st, err := cl.Storage[node].BDS.SubTableProjected(id, filter, project)
		if err != nil {
			return nil, err
		}
		return FetchedSubTable(st), nil
	})
	if err != nil {
		return nil, err
	}
	wire := int64(f.WireBytes())
	cl.met.fetches.Inc()
	cl.met.fetchBytes.Add(wire)
	cl.met.fetchEncBytes.Add(wire)
	cl.met.fetchDecBytes.Add(int64(f.DecodedBytes()))
	simio.Transfer(cl.Storage[node].NIC, cl.Compute[computeID].NIC, wire)
	return f, nil
}

// Ship models sending size bytes from storage node s to compute node j
// (the record streams of Grace Hash partitioning).
func (cl *Cluster) Ship(s, j int, size int64) {
	simio.Transfer(cl.Storage[s].NIC, cl.Compute[j].NIC, size)
}

// AcquireRun takes the cluster exclusively for one query execution;
// ReleaseRun frees it. Engines call these around non-shared runs, which
// reset caches and accounting, so such runs cannot overlap with anything.
func (cl *Cluster) AcquireRun() { cl.runMu.Lock() }

// ReleaseRun releases the run lock taken by AcquireRun.
func (cl *Cluster) ReleaseRun() { cl.runMu.Unlock() }

// AcquireShared joins the cluster as one of several concurrent queries
// (engine.Request.Shared): caches are left warm, counters accumulate, and
// any number of shared runs may overlap. An exclusive run blocks until all
// shared runs finish, and vice versa.
func (cl *Cluster) AcquireShared() { cl.runMu.RLock() }

// ReleaseShared releases the hold taken by AcquireShared.
func (cl *Cluster) ReleaseShared() { cl.runMu.RUnlock() }

// FlightStats aggregates the fetch-deduplication counters across compute
// nodes since the last Reset.
func (cl *Cluster) FlightStats() cache.FlightStats {
	var total cache.FlightStats
	for _, cn := range cl.Compute {
		s := cn.Flight.Stats()
		total.Leads += s.Leads
		total.Shared += s.Shared
	}
	return total
}

// Reset clears caches, counters and throttle backlogs between experiment
// runs, without touching stored data.
func (cl *Cluster) Reset() {
	for _, sn := range cl.Storage {
		sn.Disk.Counters.Reset()
		sn.Disk.ReadThrottle().Reset()
		sn.Disk.WriteThrottle().Reset()
		sn.NIC.Counters.Reset()
		sn.NIC.Throttle().Reset()
	}
	for _, cn := range cl.Compute {
		cn.Scratch.Counters.Reset()
		cn.Scratch.ReadThrottle().Reset()
		cn.Scratch.WriteThrottle().Reset()
		cn.NIC.Counters.Reset()
		cn.NIC.Throttle().Reset()
		cn.Cache.Clear()
		cn.Cache.ResetStats()
		cn.Flight.ResetStats()
		cn.CPU.Reset()
	}
	if cl.nfsRead != nil {
		cl.nfsRead.Reset()
	}
	if cl.nfsWrite != nil {
		cl.nfsWrite.Reset()
	}
	cl.Health.Retries.Store(0)
	cl.Health.Failovers.Store(0)
	cl.Health.Recoveries.Store(0)
	cl.Health.Rebuilds.Store(0)
}

// Traffic aggregates byte counters across the cluster.
type Traffic struct {
	StorageBytesRead    int64
	ScratchBytesWritten int64
	ScratchBytesRead    int64
	NetBytesToCompute   int64
}

// Traffic returns the aggregated counters since the last Reset.
func (cl *Cluster) Traffic() Traffic {
	var t Traffic
	for _, sn := range cl.Storage {
		t.StorageBytesRead += sn.Disk.Counters.BytesRead.Load()
	}
	for _, cn := range cl.Compute {
		t.ScratchBytesWritten += cn.Scratch.Counters.BytesWritten.Load()
		t.ScratchBytesRead += cn.Scratch.Counters.BytesRead.Load()
		t.NetBytesToCompute += cn.NIC.Counters.BytesRecv.Load()
	}
	return t
}
