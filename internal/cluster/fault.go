package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"sciview/internal/breaker"
	"sciview/internal/chunk"
	"sciview/internal/fault"
	"sciview/internal/metadata"
	"sciview/internal/retry"
	"sciview/internal/transport"
	"sciview/internal/tuple"
)

// Health accumulates the cluster's fault-tolerance activity. Fields are
// incremented atomically by the fetch path and the recovering engines.
type Health struct {
	// Retries counts backoff re-attempts against the same replica.
	Retries atomic.Int64
	// Failovers counts fetches redirected to a subsequent replica.
	Failovers atomic.Int64
	// Recoveries counts engine-level re-executions after a compute-node
	// death (IJ schedule slots, GH partition groups).
	Recoveries atomic.Int64
	// Rebuilds counts GH partition groups rebuilt from replicas after
	// their partitions were lost with a node.
	Rebuilds atomic.Int64
}

// HealthStats is a point-in-time copy of Health plus the breaker trip
// total, the shape surfaced through the service stats RPC.
type HealthStats struct {
	Retries      int64
	Failovers    int64
	BreakerTrips int64
	Recoveries   int64
	Rebuilds     int64
}

// Add accumulates other into h (merging stats across services).
func (h *HealthStats) Add(other HealthStats) {
	h.Retries += other.Retries
	h.Failovers += other.Failovers
	h.BreakerTrips += other.BreakerTrips
	h.Recoveries += other.Recoveries
	h.Rebuilds += other.Rebuilds
}

// Zero reports whether no fault-tolerance activity was recorded.
func (h HealthStats) Zero() bool { return h == HealthStats{} }

// HealthStats snapshots the cluster's fault-tolerance counters.
func (cl *Cluster) HealthStats() HealthStats {
	hs := HealthStats{
		Retries:    cl.Health.Retries.Load(),
		Failovers:  cl.Health.Failovers.Load(),
		Recoveries: cl.Health.Recoveries.Load(),
		Rebuilds:   cl.Health.Rebuilds.Load(),
	}
	for _, br := range cl.breakers {
		hs.BreakerTrips += br.Trips()
	}
	return hs
}

// StorageBreaker exposes storage node i's circuit breaker (planner checks,
// tests).
func (cl *Cluster) StorageBreaker(i int) *breaker.Breaker { return cl.breakers[i] }

// ComputeDown reports whether the chaos schedule has crashed compute node
// j. Without an injector every node is alive.
func (cl *Cluster) ComputeDown(j int) bool {
	return cl.Config.Faults.Down(fault.ComputeNode(j))
}

// AliveCompute returns the ids of compute nodes not crashed, in order.
func (cl *Cluster) AliveCompute() []int {
	var alive []int
	for j := range cl.Compute {
		if !cl.ComputeDown(j) {
			alive = append(alive, j)
		}
	}
	return alive
}

// NodeState is a storage node's lifecycle state as tracked by the repair
// tier. A node is born NodeUp; the repair manager marks it NodeDown when
// the chaos schedule (or a real crash) takes it out, NodeRejoining while
// catch-up replay runs, and NodeUp again once it has converged to the head
// catalog version.
type NodeState int32

const (
	NodeUp        NodeState = 0
	NodeDown      NodeState = 1
	NodeRejoining NodeState = 2
)

func (s NodeState) String() string {
	switch s {
	case NodeUp:
		return "up"
	case NodeDown:
		return "down"
	case NodeRejoining:
		return "rejoining"
	default:
		return fmt.Sprintf("NodeState(%d)", int32(s))
	}
}

// StorageState returns storage node i's lifecycle state.
func (cl *Cluster) StorageState(i int) NodeState {
	if i < 0 || i >= len(cl.states) {
		return NodeDown
	}
	return NodeState(cl.states[i].Load())
}

// SetStorageState records a lifecycle transition for storage node i. The
// repair manager is the writer; routing reads.
func (cl *Cluster) SetStorageState(i int, s NodeState) {
	if i >= 0 && i < len(cl.states) {
		cl.states[i].Store(int32(s))
	}
}

// StorageAvailable reports whether storage node i should serve reads: its
// lifecycle state is NodeUp and the chaos schedule does not currently hold
// it down. A rejoining node is NOT available — its store may be behind the
// catalog — but routing still tries non-available nodes last rather than
// failing a fetch that a stale-but-complete replica could serve.
func (cl *Cluster) StorageAvailable(i int) bool {
	if i < 0 || i >= len(cl.states) {
		return false
	}
	if NodeState(cl.states[i].Load()) != NodeUp {
		return false
	}
	return !cl.Config.Faults.Down(fault.StorageNode(i))
}

// errBreakerOpen marks a replica skipped because its breaker refused the
// call. It wraps ErrUnavailable so callers classify it as a transient
// fault, but the retry loop treats it as final for that node — backing off
// against an open breaker is pointless; the next replica is the answer.
var errBreakerOpen = fmt.Errorf("cluster: breaker open: %w", transport.ErrUnavailable)

// replicaFailover runs try against each node holding a copy of desc, in
// replica order with available (NodeUp, not chaos-downed) nodes first,
// until one succeeds. Nodes the repair tier knows to be down or rejoining
// are still tried — last — as a correctness fallback: a stale lifecycle
// view must never fail a fetch that a live replica could serve. Per node
// it applies the retry policy (with deterministic jitter keyed to the
// chunk and node), consults and feeds the node's breaker, and counts ops
// against the chaos schedule. It returns the sub-table and the node that
// served it.
func (cl *Cluster) replicaFailover(ctx context.Context, desc *chunk.Desc, try func(node int) (*Fetched, error)) (*Fetched, int, error) {
	id := desc.ID()
	// The placement list is read through the catalog lock: repair may be
	// committing new replicas concurrently.
	nodes, err := cl.Catalog.ChunkNodes(id.Table, id.Chunk)
	if err != nil {
		nodes = desc.Nodes() // not registered (tests): fall back to the descriptor
	}
	// Order by the repair tier's lifecycle view, not the injector's oracle
	// state: a node nobody has detected as down is still tried (and its
	// retries/breaker trips are how downness gets noticed).
	if len(nodes) > 1 {
		ordered := make([]int, 0, len(nodes))
		for _, n := range nodes {
			if cl.StorageState(n) == NodeUp {
				ordered = append(ordered, n)
			}
		}
		for _, n := range nodes {
			if cl.StorageState(n) != NodeUp {
				ordered = append(ordered, n)
			}
		}
		nodes = ordered
	}
	var lastErr error
	for i, node := range nodes {
		if node < 0 || node >= len(cl.Storage) {
			lastErr = fmt.Errorf("cluster: chunk %v replica on unknown node %d", id, node)
			continue
		}
		if i > 0 {
			cl.Health.Failovers.Add(1)
			cl.met.failovers.Inc()
		}
		br := cl.breakers[node]
		p := cl.Config.Retry
		p.Retries = cl.met.retries
		// Decorrelate jitter across chunks and replicas while keeping the
		// schedule deterministic for a given (policy seed, chunk, node).
		p.Seed ^= uint64(id.Table)<<40 ^ uint64(uint32(id.Chunk))<<8 ^ uint64(node)
		p.Retryable = func(err error) bool {
			return !errors.Is(err, errBreakerOpen) && transport.IsRetryable(err)
		}
		var st *Fetched
		err := retry.Do(ctx, p, func(attempt int) error {
			if attempt > 0 {
				cl.Health.Retries.Add(1)
			}
			if !br.Allow() {
				return fmt.Errorf("storage node %d: %w", node, errBreakerOpen)
			}
			if ferr := cl.Config.Faults.Op(fault.StorageNode(node), fault.OpFetch); ferr != nil {
				br.Failure()
				return ferr
			}
			got, ferr := try(node)
			if ferr != nil {
				if transport.IsRetryable(ferr) {
					br.Failure()
				}
				return ferr
			}
			br.Success()
			st = got
			return nil
		})
		if err == nil {
			return st, node, nil
		}
		lastErr = err
		if !transport.IsRetryable(err) {
			// Terminal: the handler executed and refused (RemoteError), or
			// the caller's context died. No replica can change the answer.
			cl.met.fetchFailures.Inc()
			return nil, -1, err
		}
	}
	cl.met.fetchFailures.Inc()
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: chunk %v has no replicas", id)
	}
	return nil, -1, fmt.Errorf("cluster: chunk %v: all %d replicas failed: %w", id, len(nodes), lastErr)
}

// ScanChunk reads, extracts, filters and projects one chunk storage-side
// for the Grace Hash partitioning scan, failing over to replica-holding
// nodes when the preferred one is unreachable. Unlike FetchProjected it
// pays no compute-NIC transfer — the partitioner ships its routed batches
// separately — and it returns the node that actually served the chunk so
// shipping is attributed to the right NIC.
func (cl *Cluster) ScanChunk(ctx context.Context, desc *chunk.Desc, filter *metadata.Range, project []string) (*tuple.SubTable, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, -1, err
	}
	f, node, err := cl.replicaFailover(ctx, desc, func(node int) (*Fetched, error) {
		st, err := cl.Storage[node].BDS.SubTableProjected(desc.ID(), filter, project)
		if err != nil {
			return nil, err
		}
		return FetchedSubTable(st), nil
	})
	if err != nil {
		return nil, node, err
	}
	st, err := f.SubTable()
	return st, node, err
}
