package cluster

import (
	"context"
	"math"
	"testing"
	"time"

	"sciview/internal/fault"
	"sciview/internal/metadata"
	"sciview/internal/metrics"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/retry"
	"sciview/internal/tuple"
)

// rleDataset generates a dataset whose chunks are stored run-length
// encoded, exercising the colenc pass-through path end to end.
func rleDataset(t *testing.T, nodes, replicas int) *oilres.Dataset {
	t.Helper()
	ds, err := oilres.Generate(oilres.Config{
		Grid:         partition.D(8, 8, 8),
		LeftPart:     partition.D(4, 4, 4),
		RightPart:    partition.D(4, 4, 4),
		StorageNodes: nodes,
		Replicas:     replicas,
		Format:       "rle",
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// mustSame asserts two sub-tables are bit-identical: same schema order,
// same rows, same float bits per cell (±0 and NaN payloads included).
func mustSame(t *testing.T, a, b *tuple.SubTable) {
	t.Helper()
	if got, want := a.Schema.Names(), b.Schema.Names(); len(got) != len(want) {
		t.Fatalf("schema mismatch: %v vs %v", got, want)
	}
	for i, n := range a.Schema.Names() {
		if b.Schema.Names()[i] != n {
			t.Fatalf("schema order mismatch: %v vs %v", a.Schema.Names(), b.Schema.Names())
		}
	}
	if a.NumRows() != b.NumRows() {
		t.Fatalf("rows %d vs %d", a.NumRows(), b.NumRows())
	}
	for c := 0; c < a.Schema.NumAttrs(); c++ {
		ac, bc := a.Col(c), b.Col(c)
		for r := range ac {
			if math.Float32bits(ac[r]) != math.Float32bits(bc[r]) {
				t.Fatalf("cell (%d,%d): %v vs %v", r, c, ac[r], bc[r])
			}
		}
	}
}

// TestWireEncodedByteIdentical fetches every chunk through both wire
// codecs — plain, filtered, and projected — and requires bit-identical
// decoded results, with the encoded wire moving strictly fewer bytes.
func TestWireEncodedByteIdentical(t *testing.T) {
	for _, format := range []string{"rowmajor", "rle"} {
		t.Run(format, func(t *testing.T) {
			mk := func(wire string) (*Cluster, *oilres.Dataset) {
				ds, err := oilres.Generate(oilres.Config{
					Grid:     partition.D(8, 8, 8),
					LeftPart: partition.D(4, 4, 4), RightPart: partition.D(4, 4, 4),
					StorageNodes: 2, Format: format, Seed: 7,
				})
				if err != nil {
					t.Fatal(err)
				}
				return build(t, Config{StorageNodes: 2, ComputeNodes: 1, Wire: wire}, ds), ds
			}
			plain, dsA := mk("")
			enc, dsB := mk("colenc")
			filter := &metadata.Range{Attrs: []string{"z"}, Lo: []float64{0}, Hi: []float64{2}}
			for chunkID := int32(0); chunkID < 8; chunkID++ {
				id := tuple.ID{Table: dsA.Left.ID, Chunk: chunkID}
				a, err := plain.Fetch(0, id, nil)
				if err != nil {
					t.Fatal(err)
				}
				b, err := enc.Fetch(0, id, nil)
				if err != nil {
					t.Fatal(err)
				}
				mustSame(t, a, b)

				ap, err := plain.FetchProjected(context.Background(), 0, id, filter, []string{"x", "oilp"})
				if err != nil {
					t.Fatal(err)
				}
				bp, err := enc.FetchProjected(context.Background(), 0, tuple.ID{Table: dsB.Left.ID, Chunk: chunkID}, filter, []string{"x", "oilp"})
				if err != nil {
					t.Fatal(err)
				}
				mustSame(t, ap, bp)
			}
			plainBytes := plain.Traffic().NetBytesToCompute
			encBytes := enc.Traffic().NetBytesToCompute
			if encBytes >= plainBytes {
				t.Errorf("encoded wire moved %d bytes, row-major %d — no reduction", encBytes, plainBytes)
			}
			t.Logf("%s: wire bytes %d → %d (%.0f%%)", format, plainBytes, encBytes,
				100*float64(encBytes)/float64(plainBytes))
		})
	}
}

// TestWireEncodedCounters checks the encoded/decoded byte counters and
// that the cache retains the compressed representation (resident bytes
// charged at stored size, well under the decoded size).
func TestWireEncodedCounters(t *testing.T) {
	ds := rleDataset(t, 2, 0)
	reg := metrics.NewRegistry()
	cl := build(t, Config{StorageNodes: 2, ComputeNodes: 1, CacheBytes: 1 << 20, Wire: "colenc", Metrics: reg}, ds)
	id := tuple.ID{Table: ds.Left.ID, Chunk: 0}
	f, err := cl.FetchEncoded(context.Background(), 0, id, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Encoded() {
		t.Fatal("colenc fetch did not carry an encoded table")
	}
	encTotal := cl.met.fetchEncBytes.Value()
	decTotal := cl.met.fetchDecBytes.Value()
	if encTotal <= 0 || decTotal <= 0 {
		t.Fatalf("counters: enc=%d dec=%d", encTotal, decTotal)
	}
	if encTotal >= decTotal {
		t.Errorf("encoded bytes %d not below decoded %d on rle grid data", encTotal, decTotal)
	}
	if sb, db := f.StoredBytes(), f.DecodedBytes(); sb >= db {
		t.Errorf("stored (cache-charged) bytes %d not below decoded %d", sb, db)
	}
	if f.WireBytes() != int(encTotal) {
		t.Errorf("wire bytes %d, counter %d", f.WireBytes(), encTotal)
	}
}

// TestWireEncodedTCP negotiates the encoded codec over real sockets and
// cross-checks against an in-process row-major cluster.
func TestWireEncodedTCP(t *testing.T) {
	ds := rleDataset(t, 2, 0)
	plain := build(t, Config{StorageNodes: 2, ComputeNodes: 1}, ds)
	enc, err := New(Config{StorageNodes: 2, ComputeNodes: 1, UseTCP: true, Wire: "colenc"}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Close()
	filter := &metadata.Range{Attrs: []string{"y"}, Lo: []float64{0}, Hi: []float64{1}}
	for chunkID := int32(0); chunkID < 8; chunkID++ {
		id := tuple.ID{Table: ds.Right.ID, Chunk: chunkID}
		a, err := plain.FetchProjected(context.Background(), 0, id, filter, []string{"x", "y", "wp"})
		if err != nil {
			t.Fatal(err)
		}
		b, err := enc.FetchProjected(context.Background(), 0, id, filter, []string{"x", "y", "wp"})
		if err != nil {
			t.Fatal(err)
		}
		mustSame(t, a, b)
	}
}

// TestWireEncodedFailover kills storage node 0 and checks the encoded
// fetch path fails over to the replica, still byte-identical to an
// undisturbed row-major fetch.
func TestWireEncodedFailover(t *testing.T) {
	ds := rleDataset(t, 2, 2)
	plain := build(t, Config{StorageNodes: 2, ComputeNodes: 1}, ds)
	inj := fault.New()
	enc := build(t, Config{
		StorageNodes: 2, ComputeNodes: 1, Wire: "colenc", Faults: inj,
		Retry: retry.Policy{Attempts: 2, Base: time.Millisecond, Max: 2 * time.Millisecond},
	}, ds)
	inj.Kill(fault.StorageNode(0))
	for chunkID := int32(0); chunkID < 8; chunkID++ {
		id := tuple.ID{Table: ds.Left.ID, Chunk: chunkID}
		a, err := plain.Fetch(0, id, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := enc.Fetch(0, id, nil)
		if err != nil {
			t.Fatal(err)
		}
		mustSame(t, a, b)
	}
	if enc.Health.Failovers.Load() == 0 {
		t.Error("expected failovers with storage node 0 down")
	}
}
