package cluster

import (
	"errors"
	"testing"
	"time"

	"sciview/internal/breaker"
	"sciview/internal/fault"
	"sciview/internal/oilres"
	"sciview/internal/retry"
	"sciview/internal/transport"
	"sciview/internal/tuple"
)

func fastRetry() retry.Policy {
	return retry.Policy{Attempts: 2, Base: time.Millisecond, Max: 2 * time.Millisecond}
}

func TestFetchFailsOverToReplica(t *testing.T) {
	ds := testDataset(t, 2)
	if err := oilres.Replicate(ds.Catalog, ds.Stores, 2); err != nil {
		t.Fatal(err)
	}
	inj := fault.New()
	cl := build(t, Config{
		StorageNodes: 2, ComputeNodes: 1, Faults: inj, Retry: fastRetry(),
	}, ds)
	id := tuple.ID{Table: ds.Left.ID, Chunk: 0}
	desc, err := cl.Catalog.Chunk(id.Table, id.Chunk)
	if err != nil {
		t.Fatal(err)
	}
	inj.Kill(fault.StorageNode(desc.Node))

	st, err := cl.Fetch(0, id, nil)
	if err != nil {
		t.Fatalf("fetch with primary down: %v", err)
	}
	if st.NumRows() != 64 {
		t.Errorf("rows = %d, want 64", st.NumRows())
	}
	hs := cl.HealthStats()
	if hs.Failovers == 0 {
		t.Error("no failover recorded despite primary being down")
	}
	if hs.Retries == 0 {
		t.Error("no retries recorded against the dead primary")
	}
}

func TestFetchFailsWithoutReplicas(t *testing.T) {
	ds := testDataset(t, 2)
	inj := fault.New()
	cl := build(t, Config{
		StorageNodes: 2, ComputeNodes: 1, Faults: inj, Retry: fastRetry(),
	}, ds)
	id := tuple.ID{Table: ds.Left.ID, Chunk: 0}
	desc, err := cl.Catalog.Chunk(id.Table, id.Chunk)
	if err != nil {
		t.Fatal(err)
	}
	inj.Kill(fault.StorageNode(desc.Node))

	if _, err := cl.Fetch(0, id, nil); err == nil {
		t.Fatal("unreplicated chunk on a dead node should not be fetchable")
	} else if !errors.Is(err, transport.ErrUnavailable) {
		t.Errorf("error should classify as unavailable, got %v", err)
	}
}

func TestFetchRetriesTransientDrops(t *testing.T) {
	ds := testDataset(t, 1)
	// Every 2nd fetch attempt on the node fails with a retryable error:
	// every fetch still succeeds (at most one retry each), and successes
	// between failures keep the breaker closed.
	inj := fault.New(fault.Rule{
		Node: fault.StorageNode(0), Op: fault.OpFetch, Action: fault.Drop, Every: 2,
	})
	cl := build(t, Config{
		StorageNodes: 1, ComputeNodes: 1, Faults: inj,
		Retry: retry.Policy{Attempts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond},
	}, ds)
	for _, d := range cl.Catalog.Chunks(ds.Left.ID) {
		if _, err := cl.Fetch(0, d.ID(), nil); err != nil {
			t.Fatalf("chunk %v: %v", d.ID(), err)
		}
	}
	hs := cl.HealthStats()
	if hs.Retries == 0 {
		t.Error("drops injected but no retries recorded")
	}
	if hs.BreakerTrips != 0 {
		t.Errorf("breaker tripped %d times on non-consecutive failures", hs.BreakerTrips)
	}
	if cl.StorageBreaker(0).State() != breaker.Closed {
		t.Error("breaker should stay closed when every fetch eventually succeeds")
	}
}

func TestBreakerGatesDialsUntilProbe(t *testing.T) {
	ds := testDataset(t, 1)
	// The zero-duration Delay rule is a pure dial counter: it fires on
	// every fetch attempt that actually reaches the node (the down-check
	// precedes rule matching, so attempts against the crashed node do not
	// count — and neither do attempts the breaker refuses).
	inj := fault.New(fault.Rule{
		Node: fault.StorageNode(0), Op: fault.OpFetch, Action: fault.Delay, Every: 1,
	})
	cl := build(t, Config{
		StorageNodes: 1, ComputeNodes: 1, Faults: inj,
		Retry:            retry.Policy{Attempts: 1, Base: time.Millisecond},
		BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond,
	}, ds)
	id := tuple.ID{Table: ds.Left.ID, Chunk: 0}

	// Two consecutive failures trip the breaker.
	inj.Kill(fault.StorageNode(0))
	for i := 0; i < 2; i++ {
		if _, err := cl.Fetch(0, id, nil); err == nil {
			t.Fatal("fetch from a dead node succeeded")
		}
	}
	if st := cl.StorageBreaker(0).State(); st != breaker.Open {
		t.Fatalf("breaker state after %d failures = %v, want Open", 2, st)
	}
	if hs := cl.HealthStats(); hs.BreakerTrips != 1 {
		t.Errorf("trips = %d, want 1", hs.BreakerTrips)
	}

	// The node comes back — but until the cooldown elapses the breaker
	// must short-circuit fetches without dialing it at all.
	inj.Revive(fault.StorageNode(0))
	if _, err := cl.Fetch(0, id, nil); err == nil {
		t.Fatal("open breaker should refuse the fetch")
	} else if !errors.Is(err, transport.ErrUnavailable) {
		t.Errorf("breaker-open error should classify as unavailable, got %v", err)
	}
	if n := inj.Stats().Delays; n != 0 {
		t.Fatalf("node dialed %d times while the breaker was open", n)
	}

	// After the cooldown one half-open probe goes through, succeeds, and
	// closes the breaker.
	time.Sleep(70 * time.Millisecond)
	st, err := cl.Fetch(0, id, nil)
	if err != nil {
		t.Fatalf("probe fetch: %v", err)
	}
	if st.NumRows() != 64 {
		t.Errorf("rows = %d, want 64", st.NumRows())
	}
	if n := inj.Stats().Delays; n != 1 {
		t.Errorf("dials after cooldown = %d, want exactly 1 (the probe)", n)
	}
	if bst := cl.StorageBreaker(0).State(); bst != breaker.Closed {
		t.Errorf("breaker state after successful probe = %v, want Closed", bst)
	}
}
