package cluster

import (
	"testing"

	"sciview/internal/metadata"
	"sciview/internal/tuple"
)

func TestTCPFetch(t *testing.T) {
	ds := testDataset(t, 2)
	cl, err := New(Config{
		StorageNodes: 2, ComputeNodes: 2, CacheBytes: 1 << 20, UseTCP: true,
	}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	st, err := cl.Fetch(0, tuple.ID{Table: ds.Left.ID, Chunk: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRows() != 64 {
		t.Errorf("rows = %d", st.NumRows())
	}
	// Filter pushdown crosses the wire too.
	st, err = cl.Fetch(1, tuple.ID{Table: ds.Left.ID, Chunk: 1}, &metadata.Range{
		Attrs: []string{"z"}, Lo: []float64{0}, Hi: []float64{0},
	})
	if err != nil || st.NumRows() != 16 {
		t.Fatalf("filtered fetch: rows=%d err=%v", st.NumRows(), err)
	}
	// Remote error propagation: unknown chunk.
	if _, err := cl.Fetch(0, tuple.ID{Table: ds.Left.ID, Chunk: 99}, nil); err == nil {
		t.Error("unknown chunk over TCP accepted")
	}
	// Accounting still applies (disk read happened inside the server).
	if got := cl.Traffic().StorageBytesRead; got == 0 {
		t.Error("no storage read accounted over TCP")
	}
}

func TestTCPFetchMatchesInProc(t *testing.T) {
	ds := testDataset(t, 2)
	direct, err := New(Config{StorageNodes: 2, ComputeNodes: 1}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	viaTCP, err := New(Config{StorageNodes: 2, ComputeNodes: 1, UseTCP: true}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	defer viaTCP.Close()
	for chunkID := int32(0); chunkID < 4; chunkID++ {
		id := tuple.ID{Table: ds.Left.ID, Chunk: chunkID}
		a, err := direct.Fetch(0, id, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := viaTCP.Fetch(0, id, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumRows() != b.NumRows() || !a.Schema.Equal(b.Schema) {
			t.Fatalf("chunk %d differs over TCP", chunkID)
		}
		for r := 0; r < a.NumRows(); r++ {
			for c := 0; c < a.Schema.NumAttrs(); c++ {
				if a.Value(r, c) != b.Value(r, c) {
					t.Fatalf("chunk %d value (%d,%d) differs", chunkID, r, c)
				}
			}
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	ds := testDataset(t, 1)
	cl, err := New(Config{StorageNodes: 1, ComputeNodes: 1, UseTCP: true}, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	// In-proc clusters: Close is a no-op.
	cl2, _ := New(Config{StorageNodes: 1, ComputeNodes: 1}, ds.Catalog, ds.Stores)
	if err := cl2.Close(); err != nil {
		t.Errorf("in-proc close: %v", err)
	}
}
