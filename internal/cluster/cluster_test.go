package cluster

import (
	"testing"
	"time"

	"sciview/internal/metadata"
	"sciview/internal/oilres"
	"sciview/internal/partition"
	"sciview/internal/tuple"
)

func testDataset(t *testing.T, nodes int) *oilres.Dataset {
	t.Helper()
	ds, err := oilres.Generate(oilres.Config{
		Grid:         partition.D(8, 8, 4),
		LeftPart:     partition.D(4, 4, 4),
		RightPart:    partition.D(4, 4, 4),
		StorageNodes: nodes,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func build(t *testing.T, cfg Config, ds *oilres.Dataset) *Cluster {
	t.Helper()
	cl, err := New(cfg, ds.Catalog, ds.Stores)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestNewValidation(t *testing.T) {
	ds := testDataset(t, 2)
	if _, err := New(Config{StorageNodes: 0, ComputeNodes: 1}, ds.Catalog, nil); err == nil {
		t.Error("zero storage nodes should fail")
	}
	if _, err := New(Config{StorageNodes: 3, ComputeNodes: 1}, ds.Catalog, ds.Stores); err == nil {
		t.Error("store count mismatch should fail")
	}
}

func TestFetch(t *testing.T) {
	ds := testDataset(t, 2)
	cl := build(t, Config{StorageNodes: 2, ComputeNodes: 2, CacheBytes: 1 << 20}, ds)
	st, err := cl.Fetch(0, tuple.ID{Table: ds.Left.ID, Chunk: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRows() != 64 {
		t.Errorf("rows = %d, want 64", st.NumRows())
	}
	// Counters: storage disk read + both NICs.
	tr := cl.Traffic()
	if tr.StorageBytesRead != int64(st.Bytes()) {
		t.Errorf("storage read = %d, want %d", tr.StorageBytesRead, st.Bytes())
	}
	if tr.NetBytesToCompute != int64(st.Bytes()) {
		t.Errorf("net to compute = %d, want %d", tr.NetBytesToCompute, st.Bytes())
	}
}

func TestFetchWithFilter(t *testing.T) {
	ds := testDataset(t, 2)
	cl := build(t, Config{StorageNodes: 2, ComputeNodes: 1}, ds)
	st, err := cl.Fetch(0, tuple.ID{Table: ds.Left.ID, Chunk: 0}, &metadata.Range{
		Attrs: []string{"z"}, Lo: []float64{0}, Hi: []float64{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRows() != 16 {
		t.Errorf("filtered rows = %d, want 16", st.NumRows())
	}
}

func TestFetchErrors(t *testing.T) {
	ds := testDataset(t, 2)
	cl := build(t, Config{StorageNodes: 2, ComputeNodes: 1}, ds)
	if _, err := cl.Fetch(0, tuple.ID{Table: 9, Chunk: 0}, nil); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := cl.Fetch(5, tuple.ID{Table: ds.Left.ID, Chunk: 0}, nil); err == nil {
		t.Error("unknown compute node should fail")
	}
}

func TestNetAggregateBw(t *testing.T) {
	cfg := Config{StorageNodes: 5, ComputeNodes: 3, NetBw: 100}
	if got := cfg.NetAggregateBw(); got != 300 {
		t.Errorf("NetAggregateBw = %g, want 300", got)
	}
	cfg.NetBw = 0
	if got := cfg.NetAggregateBw(); got != 0 {
		t.Errorf("unlimited = %g", got)
	}
}

func TestSharedFSContention(t *testing.T) {
	ds := testDataset(t, 2)
	// Shared server at 1MB/s read. Two fetches of the same volume must
	// serialize even though they hit different storage nodes.
	cl := build(t, Config{
		StorageNodes: 2, ComputeNodes: 2,
		DiskReadBw: 1 << 20, DiskWriteBw: 1 << 20, SharedFS: true,
	}, ds)
	// Left chunk 0 on node 0, chunk 1 on node 1 (block-cyclic).
	bytes := int64(64 * 16)
	_ = bytes
	start := time.Now()
	done := make(chan error, 2)
	go func() {
		_, err := cl.Fetch(0, tuple.ID{Table: ds.Left.ID, Chunk: 0}, nil)
		done <- err
	}()
	go func() {
		_, err := cl.Fetch(1, tuple.ID{Table: ds.Left.ID, Chunk: 1}, nil)
		done <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// Each chunk is 64 rows × 16 B = 1 KiB; at 1 MiB/s shared that is
	// ~2ms serialized. Too fast to assert; instead check the shared
	// throttle accounted both reads.
	if cl.nfsRead.Taken() != 2048 {
		t.Errorf("shared read throttle took %d bytes, want 2048", cl.nfsRead.Taken())
	}
	_ = elapsed
	// Scratch writes also go through the shared server.
	if err := cl.Compute[0].Scratch.Put("bucket0", make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	if cl.nfsWrite.Taken() != 512 {
		t.Errorf("shared write throttle took %d bytes, want 512", cl.nfsWrite.Taken())
	}
}

func TestLocalDisksIndependent(t *testing.T) {
	ds := testDataset(t, 2)
	cl := build(t, Config{StorageNodes: 2, ComputeNodes: 1, DiskReadBw: 1 << 20}, ds)
	if cl.Storage[0].Disk.ReadThrottle() == cl.Storage[1].Disk.ReadThrottle() {
		t.Error("local-disk mode must not share throttles")
	}
}

func TestShipAndReset(t *testing.T) {
	ds := testDataset(t, 1)
	cl := build(t, Config{StorageNodes: 1, ComputeNodes: 2, CacheBytes: 1 << 20}, ds)
	cl.Ship(0, 1, 4096)
	if got := cl.Compute[1].NIC.Counters.BytesRecv.Load(); got != 4096 {
		t.Errorf("ship recv = %d", got)
	}
	st, _ := cl.Fetch(0, tuple.ID{Table: ds.Left.ID, Chunk: 0}, nil)
	f := FetchedSubTable(st)
	cl.Compute[0].Cache.Put(FetchKey{ID: st.ID}, f, int64(f.StoredBytes()))
	cl.Reset()
	tr := cl.Traffic()
	if tr != (Traffic{}) {
		t.Errorf("traffic after reset = %+v", tr)
	}
	if cl.Compute[0].Cache.Len() != 0 {
		t.Error("cache not cleared on reset")
	}
}
