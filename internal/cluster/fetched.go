package cluster

import (
	"sciview/internal/colenc"
	"sciview/internal/tuple"
)

// Fetched is a fetch result as the compute tier carries it: either a
// decoded row-major sub-table (the classic SVT1 path) or the compressed
// columnar form (SVT2). Caches, the singleflight groups and replica
// failover all move Fetched values, so the encoded representation travels
// end to end — and a cached sub-table stays resident at its compressed
// size, decoded only when a joiner actually consumes it.
type Fetched struct {
	st  *tuple.SubTable
	enc *colenc.Table
}

// FetchedSubTable wraps a decoded sub-table.
func FetchedSubTable(st *tuple.SubTable) *Fetched { return &Fetched{st: st} }

// FetchedEncoded wraps a compressed columnar table.
func FetchedEncoded(t *colenc.Table) *Fetched { return &Fetched{enc: t} }

// Encoded reports whether the value is held in compressed form.
func (f *Fetched) Encoded() bool { return f.enc != nil }

// SubTable returns the decoded rows. For an encoded value this decodes on
// every call — deliberately: memoizing the decoded form would re-inflate
// the cache's resident bytes and cancel the point of caching compressed.
// The decode is exact, so repeated calls are byte-identical.
func (f *Fetched) SubTable() (*tuple.SubTable, error) {
	if f.st != nil {
		return f.st, nil
	}
	return f.enc.SubTable()
}

// NumRows returns the record count without decoding.
func (f *Fetched) NumRows() int {
	if f.st != nil {
		return f.st.NumRows()
	}
	return f.enc.NumRows()
}

// DecodedBytes returns the row-major payload size (rows × record size) —
// the quantity the engines' transfer accounting has always used.
func (f *Fetched) DecodedBytes() int {
	if f.st != nil {
		return f.st.Bytes()
	}
	return f.enc.DecodedBytes()
}

// StoredBytes returns the resident in-memory footprint: the compressed
// size for encoded values, the row-major size otherwise. Caches charge
// this, so the resident-bytes gauge reflects what is actually held.
func (f *Fetched) StoredBytes() int {
	if f.enc != nil {
		return f.enc.StoredBytes()
	}
	return f.st.Bytes()
}

// WireBytes returns the bytes this value occupied on the wire: the SVT2
// frame size for encoded values, the row-major payload size otherwise
// (matching the modeled transfer the uncompressed path has always
// charged).
func (f *Fetched) WireBytes() int {
	if f.enc != nil {
		return f.enc.StoredBytes()
	}
	return f.st.Bytes()
}
