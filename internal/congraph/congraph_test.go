package congraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sciview/internal/bbox"
	"sciview/internal/chunk"
	"sciview/internal/partition"
	"sciview/internal/tuple"
)

func schemaXYZ(measure string) tuple.Schema {
	return tuple.NewSchema(
		tuple.Attr{Name: "x", Kind: tuple.Coord},
		tuple.Attr{Name: "y", Kind: tuple.Coord},
		tuple.Attr{Name: "z", Kind: tuple.Coord},
		tuple.Attr{Name: measure, Kind: tuple.Measure},
	)
}

// gridDescs builds chunk descriptors for a regular partitioning. Bounds are
// inclusive cell ranges [lo, hi-1], so adjacent blocks do not touch.
func gridDescs(table int32, spec partition.Spec, measure string) []*chunk.Desc {
	schema := schemaXYZ(measure)
	n := int(spec.NumChunks())
	out := make([]*chunk.Desc, n)
	for id := 0; id < n; id++ {
		bx, by, bz := spec.ChunkCoords(id)
		lo, hi := spec.CellRange(bx, by, bz)
		out[id] = &chunk.Desc{
			Table: table,
			Chunk: int32(id),
			Attrs: schema.Attrs,
			Rows:  int(spec.TuplesPerChunk()),
			Bounds: bbox.New(
				[]float64{float64(lo.X), float64(lo.Y), float64(lo.Z), 0},
				[]float64{float64(hi.X - 1), float64(hi.Y - 1), float64(hi.Z - 1), 1},
			),
		}
	}
	return out
}

func TestBuildIdenticalPartitions(t *testing.T) {
	g := partition.D(16, 16, 8)
	p := partition.D(8, 8, 8)
	spec := partition.Spec{Grid: g, Part: p}
	left := gridDescs(0, spec, "oilp")
	right := gridDescs(1, spec, "wp")
	gr, err := Build(left, right, []string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	// Identical partitions: each chunk pairs with exactly its twin.
	if gr.NumEdges() != int(spec.NumChunks()) {
		t.Fatalf("n_e = %d, want %d", gr.NumEdges(), spec.NumChunks())
	}
	for _, e := range gr.Edges {
		if e.Left != e.Right {
			t.Fatalf("unexpected edge %v", e)
		}
	}
	comps := gr.Components()
	if len(comps) != int(spec.NumChunks()) {
		t.Fatalf("%d components, want %d", len(comps), spec.NumChunks())
	}
	for _, c := range comps {
		if len(c.Lefts) != 1 || len(c.Rights) != 1 || len(c.Edges) != 1 {
			t.Fatalf("component shape wrong: %+v", c)
		}
	}
}

func TestBuildMatchesFormulas(t *testing.T) {
	g := partition.D(16, 16, 8)
	cases := []struct{ p, q partition.Dims }{
		{partition.D(8, 8, 8), partition.D(4, 4, 8)},
		{partition.D(4, 16, 8), partition.D(16, 4, 8)},
		{partition.D(2, 2, 2), partition.D(8, 8, 8)},
		{partition.D(16, 16, 8), partition.D(1, 16, 8)},
	}
	for _, tc := range cases {
		left := gridDescs(0, partition.Spec{Grid: g, Part: tc.p}, "oilp")
		right := gridDescs(1, partition.Spec{Grid: g, Part: tc.q}, "wp")
		gr, err := Build(left, right, []string{"x", "y", "z"})
		if err != nil {
			t.Fatal(err)
		}
		wantEdges := partition.NumEdges(g, tc.p, tc.q)
		if int64(gr.NumEdges()) != wantEdges {
			t.Errorf("p=%v q=%v: n_e = %d, want %d", tc.p, tc.q, gr.NumEdges(), wantEdges)
		}
		comps := gr.Components()
		wantComps := partition.NumComponents(g, tc.p, tc.q)
		if int64(len(comps)) != wantComps {
			t.Errorf("p=%v q=%v: N_C = %d, want %d", tc.p, tc.q, len(comps), wantComps)
		}
		a := partition.LeftPerComponent(tc.p, tc.q)
		b := partition.RightPerComponent(tc.p, tc.q)
		ec := partition.EdgesPerComponent(tc.p, tc.q)
		for _, c := range comps {
			if int64(len(c.Lefts)) != a || int64(len(c.Rights)) != b || int64(len(c.Edges)) != ec {
				t.Errorf("p=%v q=%v: component (a=%d,b=%d,e=%d), want (%d,%d,%d)",
					tc.p, tc.q, len(c.Lefts), len(c.Rights), len(c.Edges), a, b, ec)
			}
		}
	}
}

func TestRightDegrees(t *testing.T) {
	g := partition.D(8, 8, 8)
	// Left blocks twice the size of right: each right overlaps exactly 1
	// left; each left overlaps 8 rights.
	left := gridDescs(0, partition.Spec{Grid: g, Part: partition.D(8, 8, 8)}, "oilp")
	right := gridDescs(1, partition.Spec{Grid: g, Part: partition.D(4, 4, 4)}, "wp")
	gr, err := Build(left, right, []string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range gr.RightDegrees() {
		if d != 1 {
			t.Errorf("right %d degree = %d, want 1", i, d)
		}
	}
	if avg := gr.AvgRightDegree(); avg != 1 {
		t.Errorf("avg right degree = %g", avg)
	}
}

func TestBuildErrors(t *testing.T) {
	g := partition.Spec{Grid: partition.D(8, 8, 8), Part: partition.D(8, 8, 8)}
	descs := gridDescs(0, g, "oilp")
	if _, err := Build(descs, descs, nil); err == nil {
		t.Error("no join attrs should fail")
	}
	if _, err := Build(descs, descs, []string{"w"}); err == nil {
		t.Error("unknown join attr should fail")
	}
}

func TestEmptyGraph(t *testing.T) {
	gr, err := Build(nil, nil, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if gr.NumEdges() != 0 || len(gr.Components()) != 0 || gr.AvgRightDegree() != 0 {
		t.Error("empty graph should have no edges/components")
	}
}

func TestDisjointTablesNoEdges(t *testing.T) {
	// Right chunks offset beyond the left grid: no overlaps.
	spec := partition.Spec{Grid: partition.D(8, 8, 8), Part: partition.D(4, 4, 4)}
	left := gridDescs(0, spec, "oilp")
	right := gridDescs(1, spec, "wp")
	for _, d := range right {
		for k := 0; k < 3; k++ {
			d.Bounds.Lo[k] += 100
			d.Bounds.Hi[k] += 100
		}
	}
	gr, err := Build(left, right, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if gr.NumEdges() != 0 {
		t.Errorf("n_e = %d, want 0", gr.NumEdges())
	}
}

// TestPropComponentsPartitionEdges: components partition the edge set, and
// every edge's endpoints are inside its component.
func TestPropComponentsPartitionEdges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := partition.D(16, 16, 8)
		pow := func(limit int) int {
			v := 1
			for v*2 <= limit && r.Intn(2) == 0 {
				v *= 2
			}
			return v
		}
		p := partition.D(pow(16), pow(16), pow(8))
		q := partition.D(pow(16), pow(16), pow(8))
		left := gridDescs(0, partition.Spec{Grid: g, Part: p}, "oilp")
		right := gridDescs(1, partition.Spec{Grid: g, Part: q}, "wp")
		gr, err := Build(left, right, []string{"x", "y", "z"})
		if err != nil {
			return false
		}
		comps := gr.Components()
		total := 0
		for _, c := range comps {
			total += len(c.Edges)
			inL := make(map[int]bool)
			inR := make(map[int]bool)
			for _, l := range c.Lefts {
				inL[l] = true
			}
			for _, rr := range c.Rights {
				inR[rr] = true
			}
			for _, e := range c.Edges {
				if !inL[e.Left] || !inR[e.Right] {
					return false
				}
			}
		}
		return total == gr.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	g := partition.D(64, 64, 32)
	left := gridDescs(0, partition.Spec{Grid: g, Part: partition.D(8, 8, 8)}, "oilp")
	right := gridDescs(1, partition.Spec{Grid: g, Part: partition.D(4, 4, 8)}, "wp")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(left, right, []string{"x", "y", "z"}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(left)+len(right)), "chunks")
}

func BenchmarkComponents(b *testing.B) {
	g := partition.D(64, 64, 32)
	left := gridDescs(0, partition.Spec{Grid: g, Part: partition.D(8, 8, 8)}, "oilp")
	right := gridDescs(1, partition.Spec{Grid: g, Part: partition.D(4, 4, 8)}, "wp")
	gr, err := Build(left, right, []string{"x", "y", "z"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if comps := gr.Components(); len(comps) == 0 {
			b.Fatal("no components")
		}
	}
}
