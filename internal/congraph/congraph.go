// Package congraph builds the sub-table connectivity graph — the paper's
// page-level join index. Nodes are basic sub-tables of the two joined
// tables; an edge connects a left and a right sub-table whose bounds on the
// join attributes overlap, i.e. a candidate pair that must be checked for
// matches. Connected components are the unit of IJ scheduling.
package congraph

import (
	"fmt"
	"sort"

	"sciview/internal/bbox"
	"sciview/internal/chunk"
	"sciview/internal/rtree"
	"sciview/internal/tuple"
)

// Edge is a candidate sub-table pair (left chunk index, right chunk index
// into the Graph's Left/Right slices).
type Edge struct {
	Left  int
	Right int
}

// Graph is a bipartite sub-table connectivity graph.
type Graph struct {
	Left  []*chunk.Desc
	Right []*chunk.Desc
	Edges []Edge
}

// Build constructs the connectivity graph between the given left and right
// chunk sets for a join on joinAttrs. Both chunk sets must expose every
// join attribute; per the paper, a missing bound would be [-Inf,+Inf] and
// join everything, which is almost certainly a mis-specified join, so it is
// rejected instead.
//
// Candidate pairs are found with an R-tree over the right set, so the cost
// is O((L+R) log R + n_e) rather than O(L·R).
func Build(left, right []*chunk.Desc, joinAttrs []string) (*Graph, error) {
	if len(joinAttrs) == 0 {
		return nil, fmt.Errorf("congraph: no join attributes")
	}
	leftIdx, err := attrIndexes(left, joinAttrs)
	if err != nil {
		return nil, fmt.Errorf("congraph: left table: %w", err)
	}
	rightIdx, err := attrIndexes(right, joinAttrs)
	if err != nil {
		return nil, fmt.Errorf("congraph: right table: %w", err)
	}

	g := &Graph{Left: left, Right: right}
	tree := rtree.New(len(joinAttrs), 0)
	for i, d := range right {
		tree.Insert(joinBox(d, rightIdx[i]), int64(i))
	}
	var hits []int64
	for li, d := range left {
		hits = tree.Search(joinBox(d, leftIdx[li]), hits[:0])
		// Sort for deterministic edge order.
		sort.Slice(hits, func(a, b int) bool { return hits[a] < hits[b] })
		for _, ri := range hits {
			g.Edges = append(g.Edges, Edge{Left: li, Right: int(ri)})
		}
	}
	return g, nil
}

// attrIndexes resolves the join attributes in every chunk's schema. Chunks
// of one table may in principle have differing schemas; the common case is
// one schema, so indexes are computed per distinct schema shape cheaply by
// recomputing only when the schema differs from the previous chunk's.
func attrIndexes(descs []*chunk.Desc, joinAttrs []string) ([][]int, error) {
	out := make([][]int, len(descs))
	for i, d := range descs {
		if i > 0 && sameAttrs(descs[i-1].Attrs, d.Attrs) {
			out[i] = out[i-1]
			continue
		}
		schema := d.Schema()
		idxs, err := schema.Indexes(joinAttrs)
		if err != nil {
			return nil, fmt.Errorf("chunk %v: %w", d.ID(), err)
		}
		out[i] = idxs
	}
	return out, nil
}

func sameAttrs(a, b []tuple.Attr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// joinBox projects a chunk's bounds onto the join attributes.
func joinBox(d *chunk.Desc, idx []int) bbox.Box {
	lo := make([]float64, len(idx))
	hi := make([]float64, len(idx))
	for k, i := range idx {
		lo[k] = d.Bounds.Lo[i]
		hi[k] = d.Bounds.Hi[i]
	}
	return bbox.New(lo, hi)
}

// NumEdges returns n_e.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// RightDegrees returns the degree of each right node. The IJ lookup cost is
// proportional to sum(degree(right) × rows(right)).
func (g *Graph) RightDegrees() []int {
	deg := make([]int, len(g.Right))
	for _, e := range g.Edges {
		deg[e.Right]++
	}
	return deg
}

// AvgRightDegree returns n_e / m_S, the average degree of a right
// sub-table node — the multiplier on IJ's probe cost in the cost model.
func (g *Graph) AvgRightDegree() float64 {
	if len(g.Right) == 0 {
		return 0
	}
	return float64(len(g.Edges)) / float64(len(g.Right))
}

// Component is a connected sub-graph: the unit the IJ scheduler assigns to
// a compute node. Lefts and Rights index into the Graph's chunk slices;
// Edges are the component's candidate pairs.
type Component struct {
	Lefts  []int
	Rights []int
	Edges  []Edge
}

// Components returns the connected components of the graph, each with its
// edges, ordered deterministically by smallest left index. Isolated nodes
// (sub-tables with no candidate partner) contribute no component: they
// produce no join output and are never fetched.
func (g *Graph) Components() []Component {
	uf := newUnionFind(len(g.Left) + len(g.Right))
	r0 := len(g.Left)
	for _, e := range g.Edges {
		uf.union(e.Left, r0+e.Right)
	}
	byRoot := make(map[int]*Component)
	var order []int
	for _, e := range g.Edges {
		root := uf.find(e.Left)
		comp, ok := byRoot[root]
		if !ok {
			comp = &Component{}
			byRoot[root] = comp
			order = append(order, root)
		}
		comp.Edges = append(comp.Edges, e)
	}
	seenL := make([]bool, len(g.Left))
	seenR := make([]bool, len(g.Right))
	out := make([]Component, 0, len(order))
	for _, root := range order {
		comp := byRoot[root]
		for _, e := range comp.Edges {
			if !seenL[e.Left] {
				seenL[e.Left] = true
				comp.Lefts = append(comp.Lefts, e.Left)
			}
			if !seenR[e.Right] {
				seenR[e.Right] = true
				comp.Rights = append(comp.Rights, e.Right)
			}
		}
		sort.Ints(comp.Lefts)
		sort.Ints(comp.Rights)
		out = append(out, *comp)
	}
	return out
}

// unionFind is a weighted quick-union with path halving.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
